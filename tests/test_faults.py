"""Tests for the fault-tolerance layer: deterministic fault injection
(:mod:`repro.fuzz.faults`), cooperative deadlines
(:mod:`repro.parallel.deadline`), the supervised dispatch/recovery paths
in :class:`repro.parallel.ProverPool`, the shm janitor, and the
per-job failure contract of :func:`repro.snark.prove_many`.

The invariant under test throughout: an injected fault either leaves the
proof bytes **identical** to the no-fault run (recovered) or surfaces as
a typed :class:`repro.errors.ReproError` — and never leaks a /dev/shm
segment either way.
"""

import os
import subprocess
import sys

import numpy as np
import pytest

from repro.errors import ProverTimeoutError, ReproError, WorkerCrashError
from repro.fuzz import faults
from repro.parallel import (
    FaultPolicy,
    ProverPool,
    check_deadline,
    deadline_scope,
    shm,
)
from repro.parallel.deadline import active_deadline, remaining
from repro.snark import TEST, JobResult, prove, prove_many, setup, verify
from repro.workloads import synthetic_r1cs

#: Fast supervision for tests: short backoff, short stall watchdog.
QUICK_POLICY = FaultPolicy(max_retries=2, backoff_base_s=0.01,
                           backoff_cap_s=0.1, dispatch_timeout_s=2.0)


@pytest.fixture(scope="module")
def instance():
    return synthetic_r1cs(log_size=10, seed=9)


@pytest.fixture(scope="module")
def keys(instance):
    r1cs, _, _ = instance
    return setup(r1cs, TEST)


def _repro_segments():
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith("repro"))
    except FileNotFoundError:
        return []


class TestFaultPlan:
    def test_env_round_trip(self):
        plan = faults.FaultPlan(kind="stall", site="encode", hits=3,
                                stall_s=1.5, token="t42")
        clone = faults.FaultPlan.from_env(plan.to_env())
        assert clone == plan

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            faults.FaultPlan(kind="meteor_strike", site="encode")

    def test_hits_must_be_positive(self):
        with pytest.raises(ValueError, match="hits"):
            faults.FaultPlan(kind="error", site="encode", hits=0)

    def test_injected_scope_arms_and_disarms(self):
        plan = faults.FaultPlan(kind="error", site="nowhere", token="scope")
        assert faults.FAULTS_ENV not in os.environ
        with faults.injected(plan):
            assert os.environ[faults.FAULTS_ENV] == plan.to_env()
        assert faults.FAULTS_ENV not in os.environ
        assert not os.path.exists(plan.claim_path)

    def test_error_fires_exactly_once(self):
        plan = faults.FaultPlan(kind="error", site="unit", token="once")
        with faults.injected(plan):
            with pytest.raises(RuntimeError, match="injected fault"):
                faults.maybe_fault("unit")
            # claim file arbitrates: the plan never fires twice
            for _ in range(5):
                faults.maybe_fault("unit")

    def test_hits_counts_arrivals(self):
        plan = faults.FaultPlan(kind="error", site="unit", hits=3,
                                token="third")
        with faults.injected(plan):
            faults.maybe_fault("unit")
            faults.maybe_fault("unit")
            with pytest.raises(RuntimeError):
                faults.maybe_fault("unit")

    def test_other_sites_untouched(self):
        plan = faults.FaultPlan(kind="error", site="unit", token="site")
        with faults.injected(plan):
            for _ in range(3):
                faults.maybe_fault("some_other_site")
            assert not os.path.exists(plan.claim_path)

    def test_no_plan_is_a_noop(self):
        faults.maybe_fault("anything")  # must not raise

    def test_segment_kinds_need_a_descriptor(self):
        plan = faults.FaultPlan(kind="shm_unlink", site="unit",
                                token="nodesc")
        with faults.injected(plan):
            faults.maybe_fault("unit", desc=None)  # no victim: no-op
            assert not os.path.exists(plan.claim_path)


class TestDeadline:
    def test_no_scope_is_unbounded(self):
        assert active_deadline() is None
        assert remaining() is None
        check_deadline("anywhere")  # no-op

    def test_expired_scope_raises_typed(self):
        with deadline_scope(0.0, label="unit test"):
            with pytest.raises(ProverTimeoutError) as ei:
                check_deadline("phase.x")
        err = ei.value
        assert isinstance(err, ReproError)
        assert isinstance(err, TimeoutError)
        assert err.budget_s == 0.0
        assert err.phase == "phase.x"
        assert "unit test" in str(err)

    def test_generous_scope_passes(self):
        with deadline_scope(60.0) as d:
            check_deadline("phase.y")
            assert 0 < remaining() <= 60.0
            assert not d.expired

    def test_none_budget_is_noop_scope(self):
        with deadline_scope(None):
            assert active_deadline() is None

    def test_nested_scope_clamps_to_outer(self):
        with deadline_scope(0.0):
            with deadline_scope(1000.0) as inner:
                # the inner "budget" cannot extend the spent outer one
                assert inner.expired
                with pytest.raises(ProverTimeoutError):
                    check_deadline()

    def test_scope_restores_previous_on_error(self):
        with deadline_scope(60.0) as outer:
            try:
                with deadline_scope(30.0):
                    raise RuntimeError("boom")
            except RuntimeError:
                pass
            assert active_deadline() is outer
        assert active_deadline() is None


class TestProveTimeout:
    def test_prove_timeout_raises_typed(self, instance, keys):
        _, public, witness = instance
        pk, _ = keys
        with pytest.raises(ProverTimeoutError) as ei:
            prove(pk, public, witness, seed=1, timeout_s=1e-6)
        assert ei.value.budget_s == 1e-6
        assert ei.value.phase  # names the phase boundary that tripped
        assert active_deadline() is None  # scope unwound

    def test_prove_many_timeout_on_error_return(self, instance, keys):
        _, public, witness = instance
        pk, _ = keys
        results = prove_many(pk, [(public, witness)] * 2, workers=1,
                             base_seed=5, timeout_s=1e-6,
                             on_error="return")
        assert all(isinstance(r, JobResult) and not r.ok for r in results)
        assert all(isinstance(r.error, ProverTimeoutError) for r in results)

    def test_prove_many_timeout_on_error_raise(self, instance, keys):
        _, public, witness = instance
        pk, _ = keys
        with pytest.raises(ProverTimeoutError):
            prove_many(pk, [(public, witness)], workers=1,
                       base_seed=5, timeout_s=1e-6)

    def test_on_error_validated(self, instance, keys):
        _, public, witness = instance
        pk, _ = keys
        with pytest.raises(ValueError, match="on_error"):
            prove_many(pk, [(public, witness)], workers=1,
                       on_error="explode")


class TestSupervisedRecovery:
    """Injected faults against a live pool: bytes must stay identical."""

    def test_injected_error_is_retried(self, instance, keys):
        r1cs, public, witness = instance
        pk, vk = keys
        reference = prove(pk, public, witness, seed=44).to_bytes()
        before = _repro_segments()
        plan = faults.FaultPlan(kind="error", site="encode",
                                token="t_retry")
        with faults.injected(plan):
            with ProverPool(workers=2, auto_chunk=False,
                            fault_policy=QUICK_POLICY) as p:
                bundle = prove(pk, public, witness, seed=44, pool=p)
            assert os.path.exists(plan.claim_path), "fault never fired"
        assert bundle.to_bytes() == reference
        assert verify(vk, bundle)
        assert _repro_segments() == before

    def test_shm_unlink_degrades_to_serial(self, instance, keys):
        r1cs, public, witness = instance
        pk, vk = keys
        reference = prove(pk, public, witness, seed=45).to_bytes()
        before = _repro_segments()
        plan = faults.FaultPlan(kind="shm_unlink", site="encode",
                                token="t_unlink")
        with faults.injected(plan):
            with ProverPool(workers=2, auto_chunk=False,
                            fault_policy=QUICK_POLICY) as p:
                bundle = prove(pk, public, witness, seed=45, pool=p)
            fired = os.path.exists(plan.claim_path)
        if fired:  # non-Linux: segment kinds cannot fire
            assert bundle.to_bytes() == reference
        assert verify(vk, bundle)
        assert _repro_segments() == before

    def test_unrecoverable_corruption_raises_workercrash(self):
        """At the pool layer (no serial fallback above it), shm damage
        surfaces as a typed WorkerCrashError after zero retries."""
        import pickle

        if not shm.shm_enabled():
            pytest.skip("no shared memory on this platform")
        with ProverPool(workers=2, auto_chunk=False,
                        fault_policy=QUICK_POLICY) as p:

            with pytest.raises(WorkerCrashError) as ei:
                p.run(_boom_shm, [(0, 4), (4, 8)])
            assert isinstance(ei.value.__cause__, (shm.ShmError,
                                                   pickle.PickleError))
            assert ei.value.retries == 0  # fail-fast: no pointless retry


def _boom_shm(lo, hi):
    """Module-level so it pickles into workers; always tears."""
    raise shm.ShmError(f"synthetic torn segment [{lo}:{hi})")


class TestJanitor:
    def _dead_pid(self):
        """A pid guaranteed dead: a subprocess we already reaped."""
        proc = subprocess.Popen([sys.executable, "-c", "pass"])
        proc.wait()
        return proc.pid

    def test_segment_owner_pid_parses_our_names(self):
        assert shm.segment_owner_pid("repro_12345_0") == 12345
        assert shm.segment_owner_pid("repro_sigterm_99_7") == 99
        assert shm.segment_owner_pid("psm_abcdef") is None
        assert shm.segment_owner_pid("some_other_tool_1_2") is None

    def test_scan_and_reclaim_orphan(self, tmp_path):
        dead = self._dead_pid()
        fake_dir = tmp_path / "shm"
        fake_dir.mkdir()
        orphan = f"repro_{dead}_0"
        live = f"repro_{os.getpid()}_0"
        foreign = "definitely_not_ours"
        for name in (orphan, live, foreign):
            (fake_dir / name).write_bytes(b"\x00" * 16)
        assert shm.scan_orphans(str(fake_dir)) == [orphan]
        assert shm.reclaim_orphans(str(fake_dir)) == [orphan]
        assert sorted(os.listdir(fake_dir)) == sorted([live, foreign])
        # second pass: nothing left to reclaim
        assert shm.reclaim_orphans(str(fake_dir)) == []

    def test_missing_dir_is_empty(self):
        assert shm.scan_orphans("/no/such/dir") == []
        assert shm.reclaim_orphans("/no/such/dir") == []

    @pytest.mark.skipif(not os.path.isdir("/dev/shm"),
                        reason="needs a real /dev/shm")
    def test_pool_startup_sweeps_orphans(self, keys, instance):
        dead = self._dead_pid()
        orphan = os.path.join("/dev/shm", f"repro_{dead}_0")
        with open(orphan, "wb") as fh:
            fh.write(b"\x00" * 16)
        try:
            with ProverPool(workers=2, auto_chunk=False) as p:
                p.warm()
                assert not os.path.exists(orphan), \
                    "pool startup left the orphan behind"
        finally:
            if os.path.exists(orphan):
                os.unlink(orphan)

    def test_doctor_cli_reclaims(self, tmp_path):
        from repro.cli import main

        rc = main(["doctor"])
        assert rc == 0


class TestProveManyPartialFailure:
    def test_success_returns_ok_jobresults(self, instance, keys):
        _, public, witness = instance
        pk, vk = keys
        reference = [b.to_bytes() for b in
                     prove_many(pk, [(public, witness)] * 2, workers=1,
                                base_seed=17)]
        results = prove_many(pk, [(public, witness)] * 2, workers=1,
                             base_seed=17, on_error="return")
        assert all(isinstance(r, JobResult) and r.ok and r.error is None
                   for r in results)
        assert [r.bundle.to_bytes() for r in results] == reference
        assert all(verify(vk, r.bundle) for r in results)

    def test_workers_zero_short_circuits_global_pool(self, instance, keys):
        """workers=0 must run inline without probing dispatch cost or
        warming the process-wide pool (regression: the old path built a
        pool just to discover it would not use it)."""
        from repro.parallel import pool as pool_mod
        from repro.parallel import shutdown

        shutdown()
        _, public, witness = instance
        pk, _ = keys
        for w in (0, 1):
            bundles = prove_many(pk, [(public, witness)], workers=w,
                                 base_seed=3)
            assert len(bundles) == 1
            assert pool_mod._GLOBAL_POOL is None, \
                f"workers={w} spun up the global pool"

    def test_parallel_poisoned_broadcast_recovers(self, instance, keys):
        """Poisoning the broadcast pk blob mid-batch must not change a
        single proof byte: the parent retries serially with its pristine
        key and evicts the damaged blob."""
        if not shm.shm_enabled():
            pytest.skip("broadcast poisoning needs shared memory")
        _, public, witness = instance
        pk, vk = keys
        jobs = [(public, witness)] * 3
        reference = [b.to_bytes() for b in
                     prove_many(pk, jobs, workers=1, base_seed=29)]
        before = _repro_segments()
        plan = faults.FaultPlan(kind="poison_pickle", site="broadcast",
                                token="t_poison")
        with faults.injected(plan):
            with ProverPool(workers=2, auto_chunk=False,
                            fault_policy=QUICK_POLICY) as p:
                bundles = prove_many(pk, jobs, pool=p, base_seed=29)
            assert os.path.exists(plan.claim_path), "fault never fired"
        assert [b.to_bytes() for b in bundles] == reference
        assert all(verify(vk, b) for b in bundles)
        assert _repro_segments() == before
