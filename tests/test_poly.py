"""Tests for dense univariate polynomials and interpolation."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.goldilocks import MODULUS
from repro.field.poly import (
    Polynomial,
    evaluate_on_range,
    interpolate,
    interpolate_eval,
)

felt = st.integers(0, MODULUS - 1)
coeff_lists = st.lists(felt, min_size=1, max_size=8)


class TestPolynomial:
    def test_normalization(self):
        assert Polynomial([1, 2, 0, 0]).coeffs == [1, 2]
        assert Polynomial([0, 0]).coeffs == [0]
        assert Polynomial([0]).is_zero()
        assert Polynomial([0]).degree == 0

    @given(coeff_lists, coeff_lists)
    def test_add_evaluates_pointwise(self, a, b):
        pa, pb = Polynomial(a), Polynomial(b)
        s = pa + pb
        for x in (0, 1, 12345):
            assert s.evaluate(x) == (pa.evaluate(x) + pb.evaluate(x)) % MODULUS

    @given(coeff_lists, coeff_lists)
    def test_mul_evaluates_pointwise(self, a, b):
        pa, pb = Polynomial(a), Polynomial(b)
        p = pa * pb
        for x in (0, 1, 7, MODULUS - 3):
            assert p.evaluate(x) == pa.evaluate(x) * pb.evaluate(x) % MODULUS

    @given(coeff_lists, coeff_lists)
    def test_sub_then_add_roundtrip(self, a, b):
        pa, pb = Polynomial(a), Polynomial(b)
        assert (pa - pb) + pb == pa

    def test_scale(self):
        p = Polynomial([1, 2, 3]).scale(10)
        assert p.coeffs == [10, 20, 30]

    def test_mul_by_zero(self):
        p = Polynomial([1, 2, 3])
        assert (p * Polynomial.zero()).is_zero()

    def test_constant(self):
        assert Polynomial.constant(7).evaluate(1234) == 7

    def test_horner_known_value(self):
        # 2 + 3x + x^2 at x = 10 -> 132
        assert Polynomial([2, 3, 1]).evaluate(10) == 132


class TestInterpolation:
    def test_exact_on_points(self, pyrng):
        xs = list(range(20))
        ys = [pyrng.randrange(MODULUS) for _ in xs]
        p = interpolate(xs, ys)
        assert p.degree <= 19
        for x, y in zip(xs, ys):
            assert p.evaluate(x) == y

    @given(st.lists(felt, min_size=2, max_size=6, unique=True),
           st.data())
    def test_interpolate_degree_bound(self, xs, data):
        ys = data.draw(st.lists(felt, min_size=len(xs), max_size=len(xs)))
        p = interpolate(xs, ys)
        assert p.degree <= len(xs) - 1
        for x, y in zip(xs, ys):
            assert p.evaluate(x) == y

    def test_interpolate_recovers_polynomial(self, pyrng):
        coeffs = [pyrng.randrange(MODULUS) for _ in range(8)]
        src = Polynomial(coeffs)
        xs = list(range(8))
        p = interpolate(xs, [src.evaluate(x) for x in xs])
        assert p == src

    def test_duplicate_points_rejected(self):
        with pytest.raises(ValueError):
            interpolate([1, 1], [2, 3])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            interpolate([1, 2], [3])

    def test_interpolate_eval_matches_full(self, pyrng):
        xs = [0, 1, 2, 3]
        ys = [pyrng.randrange(MODULUS) for _ in xs]
        p = interpolate(xs, ys)
        for x in (17, MODULUS - 2, 5):
            assert interpolate_eval(xs, ys, x) == p.evaluate(x)

    def test_evaluate_on_range(self):
        p = Polynomial([5, 1])  # 5 + x
        assert evaluate_on_range(p, 4) == [5, 6, 7, 8]
