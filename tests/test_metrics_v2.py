"""Tests for Metrics v2: latency histograms, the OpenMetrics exposition
round-trip, the flight recorder, per-job reports, and the bench_diff
perf-regression gate."""

from __future__ import annotations

import importlib.util
import json
import math
import time
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.errors import ProverTimeoutError
from repro.obs import FLIGHT, METRICS
from repro.obs.events import (
    FlightRecorder,
    JobReport,
    format_events,
    read_spool,
)
from repro.obs.metrics import (
    DEFAULT_LATENCY_BOUNDS,
    Histogram,
    MetricsRegistry,
    labels_key,
    render_hist_key,
)
from repro.obs.openmetrics import parse, render, sanitize_name, write_openmetrics
from repro.parallel import ProverPool
from repro.snark import TEST, prove, prove_many, setup, verify
from repro.workloads import synthetic_r1cs

REPO_ROOT = Path(__file__).resolve().parent.parent


@pytest.fixture(autouse=True)
def _clean_obs_state():
    """Every test starts and ends on the no-op path with empty state."""
    obs.set_tracer(None)
    METRICS.enabled = False
    METRICS.reset()
    FLIGHT.enabled = True
    FLIGHT.clear()
    FLIGHT.spool_to(None)
    yield
    obs.set_tracer(None)
    METRICS.enabled = False
    METRICS.reset()
    FLIGHT.enabled = True
    FLIGHT.clear()
    FLIGHT.spool_to(None)


@pytest.fixture(scope="module")
def workload():
    r1cs, public, witness = synthetic_r1cs(log_size=8, seed=3)
    pk, vk = setup(r1cs, TEST)
    return pk, vk, public, witness


class TestHistogram:
    def test_le_bucket_semantics(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 1.0, 1.5, 2.0, 3.0, 4.0, 100.0):
            hist.observe(v)
        # le semantics: a value equal to a bound lands in that bucket.
        assert hist.counts == [2, 2, 2, 1]  # (..1], (1..2], (2..4], +Inf
        assert hist.count == 7
        assert hist.sum == pytest.approx(0.5 + 1.0 + 1.5 + 2.0 + 3.0
                                         + 4.0 + 100.0)

    def test_cumulative_ends_at_total_count(self):
        hist = Histogram(bounds=(1.0, 2.0))
        for v in (0.5, 1.5, 99.0):
            hist.observe(v)
        cum = hist.cumulative()
        assert cum == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_nan_dropped(self):
        hist = Histogram()
        hist.observe(float("nan"))
        assert hist.count == 0 and hist.sum == 0.0

    def test_default_bounds_cover_latency_range(self):
        assert DEFAULT_LATENCY_BOUNDS[0] == pytest.approx(1e-5)
        assert DEFAULT_LATENCY_BOUNDS[-1] == pytest.approx(1000.0)
        assert list(DEFAULT_LATENCY_BOUNDS) == sorted(DEFAULT_LATENCY_BOUNDS)

    def test_merge_adds_bucketwise(self):
        a, b = Histogram(bounds=(1.0, 2.0)), Histogram(bounds=(1.0, 2.0))
        a.observe(0.5)
        b.observe(1.5)
        b.observe(10.0)
        a.merge(b)
        assert a.counts == [1, 1, 1]
        assert a.count == 3
        assert a.sum == pytest.approx(12.0)

    def test_merge_rejects_mismatched_bounds(self):
        with pytest.raises(ValueError, match="different bucket bounds"):
            Histogram(bounds=(1.0,)).merge(Histogram(bounds=(2.0,)))

    def test_bounds_must_strictly_increase(self):
        with pytest.raises(ValueError):
            Histogram(bounds=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram(bounds=(2.0, 1.0))

    def test_quantile_upper_bound_semantics(self):
        hist = Histogram(bounds=(1.0, 2.0, 4.0))
        for v in (0.5, 0.6, 1.5, 3.0):
            hist.observe(v)
        assert hist.quantile(0.5) == 1.0   # 2nd of 4 obs is in le=1.0
        assert hist.quantile(1.0) == 4.0
        assert Histogram().quantile(0.5) == 0.0  # empty
        hist.observe(999.0)
        assert hist.quantile(1.0) == math.inf  # overflow bucket

    def test_dict_roundtrip_and_validation(self):
        hist = Histogram(bounds=(1.0, 2.0))
        hist.observe(1.5)
        clone = Histogram.from_dict(json.loads(json.dumps(hist.to_dict())))
        assert clone.counts == hist.counts
        assert clone.count == hist.count
        assert clone.sum == hist.sum
        bad = hist.to_dict()
        bad["counts"] = [1]  # wrong arity for the bounds
        with pytest.raises(ValueError):
            Histogram.from_dict(bad)
        bad = hist.to_dict()
        bad["counts"] = [-1, 0, 0]
        with pytest.raises(ValueError):
            Histogram.from_dict(bad)


class TestRegistryHistograms:
    def test_observe_disabled_is_noop(self):
        METRICS.observe("prove_seconds", 1.0)
        assert METRICS.histograms() == {}

    def test_observe_with_labels_separates_series(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.observe("phase_seconds", 0.1, family="merkle")
        reg.observe("phase_seconds", 0.2, family="merkle")
        reg.observe("phase_seconds", 0.9, family="spmv")
        merkle = reg.histogram("phase_seconds", family="merkle")
        spmv = reg.histogram("phase_seconds", family="spmv")
        assert merkle.count == 2 and spmv.count == 1
        assert reg.histogram("phase_seconds") is None  # unlabeled distinct

    def test_merge_histogram_wire_form(self):
        worker = MetricsRegistry()
        worker.enabled = True
        worker.observe("prove_seconds", 0.5)
        parent = MetricsRegistry()
        parent.enabled = True
        parent.observe("prove_seconds", 0.1)
        for (name, labels), hist in worker.histograms().items():
            parent.merge_histogram(name, labels, hist.to_dict())
        merged = parent.histogram("prove_seconds")
        assert merged.count == 2
        assert merged.sum == pytest.approx(0.6)

    def test_snapshot_render_key(self):
        assert render_hist_key("h", ()) == "h"
        assert render_hist_key("h", (("family", "spmv"),)) \
            == 'h{family="spmv"}'
        assert labels_key({"b": 1, "a": "x"}) == (("a", "x"), ("b", "1"))


class TestOpenMetrics:
    def _populated(self):
        reg = MetricsRegistry()
        reg.enabled = True
        reg.inc("merkle.hashes", 1023)
        reg.gauge("process.peak_rss_bytes", 1 << 20)
        reg.observe("prove_seconds", 0.05)
        reg.observe("prove_seconds", 0.2)
        reg.observe("phase_seconds", 0.01, family="merkle")
        reg.observe("phase_seconds", 0.04, family="spmv")
        return reg

    def test_empty_registry_renders_eof_only(self):
        text = render(MetricsRegistry())
        assert text == "# EOF\n"
        assert parse(text) == {}

    def test_roundtrip_through_strict_parser(self):
        text = render(self._populated())
        metrics = parse(text)
        assert metrics["repro_merkle_hashes"]["type"] == "counter"
        hist = metrics["repro_prove_seconds"]
        assert hist["type"] == "histogram"
        assert hist["samples"][("repro_prove_seconds_count", ())] == 2.0
        assert hist["samples"][("repro_prove_seconds_sum", ())] \
            == pytest.approx(0.25)
        # Labeled histogram series survive with their labels.
        phases = metrics["repro_phase_seconds"]
        fams = {dict(labels).get("family")
                for (sname, labels) in phases["samples"]
                if sname.endswith("_count")}
        assert fams == {"merkle", "spmv"}

    def test_write_openmetrics_file(self, tmp_path):
        out = tmp_path / "metrics.prom"
        write_openmetrics(out, self._populated())
        text = out.read_text()
        assert text.endswith("# EOF\n")
        parse(text)

    def test_sanitize_name(self):
        assert sanitize_name("field.mul_batches") == "field_mul_batches"
        assert sanitize_name("9weird name!") == "_9weird_name_"

    def test_deterministic_output(self):
        reg = self._populated()
        assert render(reg) == render(reg)

    @pytest.mark.parametrize("mutate, msg", [
        (lambda t: t.replace("# EOF\n", ""), "EOF"),
        (lambda t: t.rstrip("\n"), "newline"),
        (lambda t: t.replace("# EOF", "x_no_type 1\n# EOF"), "TYPE"),
        (lambda t: "\n" + t, "blank"),
    ])
    def test_parser_rejects_structural_corruption(self, mutate, msg):
        text = render(self._populated())
        with pytest.raises(ValueError):
            parse(mutate(text))

    def test_parser_rejects_noncumulative_buckets(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="1.0"} 5\n'
                'h_bucket{le="+Inf"} 3\n'
                'h_count 3\n'
                'h_sum 1.0\n'
                '# EOF\n')
        with pytest.raises(ValueError, match="cumulative"):
            parse(text)

    def test_parser_rejects_inf_count_mismatch(self):
        text = ('# TYPE h histogram\n'
                'h_bucket{le="+Inf"} 3\n'
                'h_count 4\n'
                'h_sum 1.0\n'
                '# EOF\n')
        with pytest.raises(ValueError):
            parse(text)

    def test_parser_rejects_duplicate_series(self):
        text = ('# TYPE c counter\n'
                'c_total 1\n'
                'c_total 2\n'
                '# EOF\n')
        with pytest.raises(ValueError, match="duplicate"):
            parse(text)

    def test_parser_rejects_negative_counter(self):
        text = ('# TYPE c counter\n'
                'c_total -1\n'
                '# EOF\n')
        with pytest.raises(ValueError):
            parse(text)


class TestFlightRecorder:
    def test_ring_is_bounded_and_seq_monotonic(self):
        rec = FlightRecorder(capacity=4)
        for i in range(10):
            rec.record("retry", attempt=i)
        events = rec.events()
        assert len(events) == 4
        assert [e.data["attempt"] for e in events] == [6, 7, 8, 9]
        assert rec.seq == 10  # sequence numbers never reused

    def test_disabled_records_nothing(self):
        rec = FlightRecorder()
        rec.enabled = False
        assert rec.record("retry") is None
        assert rec.record_job(JobReport(job_id="x", op="prove")) is None
        assert rec.events() == []

    def test_fault_deltas_are_per_window(self):
        rec = FlightRecorder()
        rec.record("degradation", kernel="encode")
        seq0 = rec.seq
        rec.record("retry", attempt=1)
        rec.record("retry", attempt=2)
        rec.record_job(JobReport(job_id="j", op="prove"))  # not a fault
        # Only events inside the window; "job" records never count.
        assert rec.fault_deltas(seq0) == {"retry": 2}
        assert rec.fault_deltas(rec.seq) == {}

    def test_job_reports_roundtrip(self):
        rec = FlightRecorder()
        rec.record_job(JobReport(job_id="a-1", op="prove", preset="test-fast",
                                 workers=2, dispatch="shm",
                                 proof_size_bytes=123, ok=True,
                                 events={"retry": 1}))
        reports = rec.job_reports()
        assert len(reports) == 1
        assert reports[0].job_id == "a-1"
        assert reports[0].dispatch == "shm"
        assert reports[0].events == {"retry": 1}

    def test_spool_and_read_back_with_torn_line(self, tmp_path):
        path = tmp_path / "flight.jsonl"
        rec = FlightRecorder(spool_path=str(path))
        rec.record("retry", attempt=1)
        rec.record("timeout", label="x")
        with open(path, "a") as fh:
            fh.write('{"torn": ')  # simulated crash mid-append
        events = read_spool(str(path))
        assert [e["kind"] for e in events] == ["retry", "timeout"]
        assert read_spool(str(path), last=1)[0]["kind"] == "timeout"

    def test_broken_spool_never_raises(self, tmp_path):
        rec = FlightRecorder(spool_path=str(tmp_path / "nodir" / "f.jsonl"))
        assert rec.record("retry") is not None  # ring keeps the record

    def test_next_job_id_unique(self):
        rec = FlightRecorder()
        ids = {rec.next_job_id() for _ in range(5)}
        assert len(ids) == 5

    def test_format_events_renders_jobs_and_incidents(self):
        rec = FlightRecorder()
        rec.record_job(JobReport(job_id="p-1", op="prove", ok=True,
                                 events={"retry": 2}))
        rec.record("dispatch_stall", pending=3)
        text = format_events([e.to_dict() for e in rec.events()])
        assert "p-1" in text and "retry:2" in text
        assert "dispatch_stall" in text and "pending=3" in text


class TestProveTelemetry:
    def test_prove_observes_latency_and_phases(self, workload):
        pk, vk, public, witness = workload
        with obs.tracing():
            t0 = time.perf_counter()
            bundle = prove(pk, public, witness, seed=1)
            wall = time.perf_counter() - t0
            assert verify(vk, bundle)
        hist = METRICS.histogram("prove_seconds")
        assert hist is not None and hist.count == 1
        assert 0 < hist.sum <= wall
        assert METRICS.histogram("verify_seconds").count == 1
        phase_keys = [key for key in METRICS.histograms()
                      if key[0] == "phase_seconds"]
        assert phase_keys  # per-family attribution was recorded

    @pytest.mark.parametrize("workers", [0, 1, 2, 4])
    def test_prove_many_count_matches_jobs(self, workload, workers):
        pk, _, public, witness = workload
        jobs = [(public, witness)] * 3
        METRICS.enabled = True
        pool = (ProverPool(workers=workers, auto_chunk=False)
                if workers > 1 else None)
        try:
            t0 = time.perf_counter()
            bundles = prove_many(pk, jobs, pool=pool, workers=workers,
                                 base_seed=5)
            wall = time.perf_counter() - t0
        finally:
            if pool is not None:
                pool.close()
        assert len(bundles) == 3
        hist = METRICS.histogram("prove_seconds")
        assert hist is not None
        # Exactly one observation per job at every worker count: workers
        # observe locally and ship their histograms to the parent.
        assert hist.count == 3
        assert hist.sum > 0
        if workers <= 1:
            assert hist.sum <= wall * 1.05
        if workers > 1:
            assert METRICS.histogram("dispatch_seconds") is not None

    def test_attach_report(self, workload):
        pk, _, public, witness = workload
        bundle = prove(pk, public, witness, seed=2, attach_report=True)
        report = bundle.report
        assert report is not None and report.ok
        assert report.op == "prove"
        assert report.proof_size_bytes == bundle.size_bytes()
        assert report.dispatch == "serial"
        assert report.events == {}
        # The report is diagnostic state, never part of the wire format.
        assert b"job_id" not in bundle.to_bytes()

    def test_flight_recorder_gets_job_records(self, workload):
        pk, _, public, witness = workload
        seq0 = FLIGHT.seq
        prove(pk, public, witness, seed=3)
        prove_many(pk, [(public, witness)] * 2, workers=0, base_seed=9)
        kinds = [e.kind for e in FLIGHT.since(seq0)]
        # prove_many spawns per-job prove records plus one batch record.
        assert kinds.count("job") == 4
        batch = [e for e in FLIGHT.since(seq0)
                 if e.data.get("op") == "prove_many"]
        assert len(batch) == 1 and batch[0].data["jobs"] == 2

    def test_successive_batches_do_not_inherit_events(self, workload):
        """Satellite regression test: job reports carry per-window deltas,
        so incidents recorded before a batch never leak into its report."""
        pk, _, public, witness = workload
        FLIGHT.record("degradation", kernel="stale")
        b1 = prove_many(pk, [(public, witness)], workers=0, base_seed=1,
                        attach_report=True)
        assert b1[0].report.events == {}
        FLIGHT.record("retry", attempt=1)  # incident between batches
        b2 = prove_many(pk, [(public, witness)], workers=0, base_seed=2,
                        attach_report=True)
        assert b2[0].report.events == {}

    def test_timeout_leaves_flight_trail(self, workload):
        pk, _, public, witness = workload
        seq0 = FLIGHT.seq
        with pytest.raises(ProverTimeoutError):
            prove(pk, public, witness, seed=1, timeout_s=1e-5)
        deltas = FLIGHT.fault_deltas(seq0)
        assert deltas.get("timeout", 0) >= 1
        failed = [e for e in FLIGHT.since(seq0)
                  if e.kind == "job" and not e.data["ok"]]
        assert len(failed) == 1
        assert failed[0].data["error"] == "ProverTimeoutError"

    def test_telemetry_does_not_perturb_proof_bytes(self, workload):
        pk, _, public, witness = workload
        plain = prove(pk, public, witness, seed=11).to_bytes()
        with obs.tracing():
            traced = prove(pk, public, witness, seed=11,
                           attach_report=True).to_bytes()
        assert plain == traced


def _load_bench_diff():
    spec = importlib.util.spec_from_file_location(
        "bench_diff", REPO_ROOT / "tools" / "bench_diff.py")
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def _payload(prove_s=1.0, verify_s=0.5, size=1000, noop=0.001):
    return {"results": [{
        "log_size": 10, "prove_s": prove_s, "verify_s": verify_s,
        "proof_size_bytes": size, "peak_rss_bytes": 1 << 20,
        "instrumentation": {"noop_overhead_frac": noop},
    }]}


class TestBenchDiff:
    def test_identical_runs_pass(self):
        bd = _load_bench_diff()
        findings = bd.compare_prover(_payload(), _payload(), calibrate=False)
        assert not [f for f in findings if f["regression"]]

    def test_inflated_current_trips_gate(self):
        bd = _load_bench_diff()
        findings = bd.compare_prover(_payload(prove_s=1.0),
                                     _payload(prove_s=1.26),
                                     calibrate=False)
        bad = [f for f in findings if f["regression"]]
        assert bad and bad[0]["metric"] == "prove_s"

    def test_improvement_passes(self):
        bd = _load_bench_diff()
        findings = bd.compare_prover(_payload(prove_s=1.0),
                                     _payload(prove_s=0.5),
                                     calibrate=False)
        assert not [f for f in findings if f["regression"]]

    def test_proof_size_is_exact(self):
        bd = _load_bench_diff()
        findings = bd.compare_prover(_payload(size=1000), _payload(size=1001),
                                     calibrate=False)
        bad = [f for f in findings if f["regression"]]
        assert bad and bad[0]["metric"] == "proof_size_bytes"

    def test_noop_overhead_absolute_ceiling(self):
        bd = _load_bench_diff()
        findings = bd.compare_prover(_payload(), _payload(noop=0.03),
                                     calibrate=False)
        bad = [f for f in findings if f["regression"]]
        assert bad and bad[0]["metric"] == "noop_overhead_frac"

    def test_calibration_forgives_uniformly_slow_machine(self):
        bd = _load_bench_diff()
        base = {"results": [
            {"log_size": s, "prove_s": 1.0 * s, "verify_s": 0.5,
             "proof_size_bytes": 10} for s in (10, 11, 12)]}
        # 3x slower across the board: shape is unchanged.
        cur = {"results": [
            {"log_size": s, "prove_s": 3.0 * s, "verify_s": 1.5,
             "proof_size_bytes": 10} for s in (10, 11, 12)]}
        raw = bd.compare_prover(base, cur, calibrate=False)
        assert [f for f in raw if f["regression"]]
        calibrated = bd.compare_prover(base, cur, calibrate=True)
        assert not [f for f in calibrated if f["regression"]]

    def test_faults_scenario_and_recovery_regressions(self):
        bd = _load_bench_diff()
        base = {"scenarios": [{"scenario": "worker_kill", "ok": True}],
                "recovery_overhead": {"overhead_ratio": 1.2}}
        good = {"scenarios": [{"scenario": "worker_kill", "ok": True}],
                "recovery_overhead": {"overhead_ratio": 1.3}}
        assert not [f for f in bd.compare_faults(base, good)
                    if f["regression"]]
        bad = {"scenarios": [{"scenario": "worker_kill", "ok": False}],
               "recovery_overhead": {"overhead_ratio": 5.0}}
        findings = bd.compare_faults(base, bad)
        assert {f["metric"] for f in findings if f["regression"]} \
            == {"scenario", "recovery_overhead"}

    def test_missing_scenario_in_quick_run_is_not_failure(self):
        bd = _load_bench_diff()
        base = {"scenarios": [{"scenario": "full_only", "ok": True}],
                "recovery_overhead": None}
        assert bd.compare_faults(base, {"scenarios": []}) == []

    def test_main_exit_codes(self, tmp_path):
        bd = _load_bench_diff()
        base = tmp_path / "base.json"
        cur = tmp_path / "cur.json"
        base.write_text(json.dumps(_payload()))
        cur.write_text(json.dumps(_payload()))
        assert bd.main(["--current", str(cur), "--baseline", str(base)]) == 0
        cur.write_text(json.dumps(_payload(prove_s=2.0)))
        report = tmp_path / "diff.json"
        assert bd.main(["--current", str(cur), "--baseline", str(base),
                        "--report", str(report)]) == 1
        assert json.loads(report.read_text())["regressions"] >= 1

    def test_committed_baseline_is_self_consistent(self):
        """The gate must exit 0 when a baseline is diffed against itself —
        the invariant CI relies on after every baseline refresh."""
        bd = _load_bench_diff()
        payload = json.loads((REPO_ROOT / "BENCH_prover.json").read_text())
        findings = bd.compare_prover(payload, payload, calibrate=True)
        assert not [f for f in findings if f["regression"]]


class TestCLI:
    def test_metrics_out_and_report(self, tmp_path, capsys):
        from repro.cli import main
        prom = tmp_path / "metrics.prom"
        flight = tmp_path / "flight.jsonl"
        rc = main(["prove", "litmus", "--metrics-out", str(prom),
                   "--flight-log", str(flight)])
        assert rc == 0
        metrics = parse(prom.read_text())
        assert "repro_prove_seconds" in metrics
        assert "repro_verify_seconds" in metrics
        capsys.readouterr()
        assert main(["report", "--log", str(flight)]) == 0
        out = capsys.readouterr().out
        assert "prove" in out and "litmus" in out

    def test_metrics_command_renders_registry(self, capsys):
        from repro.cli import main
        assert main(["metrics"]) == 0
        out = capsys.readouterr().out
        assert out.endswith("# EOF\n")

    def test_report_empty_ring(self, capsys):
        from repro.cli import main
        FLIGHT.clear()
        assert main(["report"]) == 0
