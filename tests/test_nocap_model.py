"""Tests for the NoCap task model, simulator, area, and power models —
including reproduction checks against the paper's reported numbers."""

import math

import pytest

from repro.nocap import (
    DEFAULT_CONFIG,
    NoCapConfig,
    NoCapSimulator,
    area_model,
    build_prover_tasks,
    power_model,
    prover_seconds,
)
from repro.nocap.tasks import ntt_passes, sumcheck_tasks
from repro.workloads.spec import PAPER_WORKLOADS


class TestConfig:
    def test_defaults_match_paper(self):
        c = DEFAULT_CONFIG
        assert c.frequency_hz == 1e9
        assert c.mul_lanes == 2048 and c.add_lanes == 2048
        assert c.hash_lanes == 128 and c.shuffle_lanes == 128
        assert c.ntt_lanes == 64
        assert c.register_file_bytes == 8 << 20
        assert c.hbm_bytes_per_s == 1e12
        assert c.ntt_base_size == 1 << 12

    def test_scale(self):
        c = DEFAULT_CONFIG.scale(arith=2.0, hbm=0.5, rf=2.0)
        assert c.mul_lanes == 4096 and c.add_lanes == 4096
        assert c.hbm_bytes_per_s == 5e11
        assert c.register_file_bytes == 16 << 20

    def test_scale_unknown_resource(self):
        with pytest.raises(ValueError):
            DEFAULT_CONFIG.scale(gpu=2.0)


class TestTasks:
    def test_families_present(self):
        tasks = build_prover_tasks(1 << 24, DEFAULT_CONFIG)
        families = {t.family for t in tasks}
        assert families == {"sumcheck", "polyarith", "rs_encode", "merkle",
                            "spmv", "other"}

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            build_prover_tasks(1000, DEFAULT_CONFIG)

    def test_repetitions_scale_sumcheck(self):
        one = sumcheck_tasks(1 << 20, DEFAULT_CONFIG, repetitions=1)
        three = sumcheck_tasks(1 << 20, DEFAULT_CONFIG, repetitions=3)
        assert len(three) == 3 * len(one)

    def test_ntt_passes(self):
        assert ntt_passes(1 << 12, 1 << 12) == 1
        assert ntt_passes(1 << 13, 1 << 12) == 2
        assert ntt_passes(1 << 24, 1 << 12) == 2
        assert ntt_passes(1 << 25, 1 << 12) == 3
        assert ntt_passes(1, 1 << 12) == 1

    def test_recompute_reduces_traffic(self):
        on = sumcheck_tasks(1 << 24, DEFAULT_CONFIG, recompute=True)
        off = sumcheck_tasks(1 << 24, DEFAULT_CONFIG, recompute=False)
        assert sum(t.mem_bytes for t in on) < sum(t.mem_bytes for t in off)

    def test_small_instances_fit_on_chip(self):
        """Below the register-file size, sumchecks need no HBM streaming."""
        tasks = sumcheck_tasks(1 << 12, DEFAULT_CONFIG, repetitions=1)
        assert all(t.mem_bytes == 0 for t in tasks)

    def test_task_time_is_max_of_resources(self):
        tasks = build_prover_tasks(1 << 22, DEFAULT_CONFIG)
        for t in tasks:
            compute = max(t.compute_cycles(DEFAULT_CONFIG).values()) / 1e9
            memory = t.mem_bytes / 1e12
            assert t.time_seconds(DEFAULT_CONFIG) == pytest.approx(
                max(compute, memory))


class TestSimulatorCalibration:
    """Reproduction checks against Table IV and Fig. 6."""

    @pytest.fixture(scope="class")
    def ref(self):
        return NoCapSimulator().simulate(1 << 24)

    def test_reference_total(self, ref):
        # Table IV AES row: 151.3 ms (model within 5%).
        assert ref.total_seconds == pytest.approx(0.1513, rel=0.05)

    def test_fig6a_time_fractions(self, ref):
        frac = ref.time_fractions()
        assert frac["sumcheck"] == pytest.approx(0.70, abs=0.05)
        assert frac["polyarith"] == pytest.approx(0.12, abs=0.03)
        assert frac["rs_encode"] == pytest.approx(0.09, abs=0.03)
        assert frac["merkle"] == pytest.approx(0.05, abs=0.02)
        assert frac["spmv"] == pytest.approx(0.005, abs=0.005)

    def test_fig6b_traffic_fractions(self, ref):
        frac = ref.traffic_fractions()
        assert frac["sumcheck"] == pytest.approx(0.55, abs=0.05)
        assert frac["polyarith"] == pytest.approx(0.25, abs=0.05)
        assert frac["merkle"] == pytest.approx(0.09, abs=0.03)
        assert frac["rs_encode"] == pytest.approx(0.09, abs=0.04)

    def test_fig6_compute_utilization(self, ref):
        # "Overall utilization of compute resources is 60%".
        assert ref.compute_utilization() == pytest.approx(0.60, abs=0.06)

    def test_table4_proving_times(self):
        for w in PAPER_WORKLOADS:
            t = prover_seconds(w.raw_constraints)
            assert t == pytest.approx(w.paper_nocap_s, rel=0.10), w.name

    def test_table4_speedups_vs_cpu(self):
        from repro.baselines import DEFAULT_CPU

        speedups = []
        for w in PAPER_WORKLOADS:
            s = DEFAULT_CPU.prover_seconds(w.raw_constraints) / prover_seconds(
                w.raw_constraints)
            paper = w.paper_cpu_s / w.paper_nocap_s
            assert s == pytest.approx(paper, rel=0.10), w.name
            speedups.append(s)
        gmean = math.exp(sum(math.log(x) for x in speedups) / len(speedups))
        assert gmean == pytest.approx(586, rel=0.05)

    def test_table4_speedups_vs_pipezk(self):
        from repro.baselines import PipeZkModel

        pz = PipeZkModel()
        speedups = [pz.prover_seconds(w.raw_constraints)
                    / prover_seconds(w.raw_constraints)
                    for w in PAPER_WORKLOADS]
        gmean = math.exp(sum(math.log(x) for x in speedups) / len(speedups))
        assert gmean == pytest.approx(41, rel=0.10)

    def test_scaling_superlinear_but_mild(self):
        """NoCap time grows slightly faster than linearly in padded N
        (log-dependent spill rounds), matching Table IV's trend of slowly
        decreasing speedups."""
        sim = NoCapSimulator()
        t24 = sim.simulate(1 << 24).total_seconds
        t28 = sim.simulate(1 << 28).total_seconds
        ratio = t28 / t24
        assert 16.0 < ratio < 19.5

    def test_recompute_ablation(self):
        """Sec. VIII-C: recomputation improves NoCap by ~1.1x and cuts
        sumcheck traffic by ~31%."""
        sim = NoCapSimulator()
        on = sim.simulate(1 << 24)
        off = sim.simulate(1 << 24, recompute=False)
        gain = off.total_seconds / on.total_seconds
        assert gain == pytest.approx(1.10, abs=0.04)
        cut = 1 - (on.traffic_by_family["sumcheck"]
                   / off.traffic_by_family["sumcheck"])
        assert cut == pytest.approx(0.31, abs=0.05)

    def test_memory_bandwidth_never_exceeded(self, ref):
        assert ref.memory_utilization() <= 1.0


class TestArea:
    def test_table2_reproduced(self):
        a = area_model()
        assert a.ntt_fu == pytest.approx(1.80)
        assert a.mul_fu == pytest.approx(6.34)
        assert a.add_fu == pytest.approx(0.96)
        assert a.hash_fu == pytest.approx(0.84)
        assert a.total_compute == pytest.approx(9.95, abs=0.02)
        assert a.register_file == pytest.approx(6.01)
        assert a.benes == pytest.approx(0.11)
        assert a.memory_phy == pytest.approx(29.80)
        assert a.total_memory_system == pytest.approx(35.92)
        assert a.total == pytest.approx(45.87, abs=0.02)

    def test_area_scales_with_lanes(self):
        a = area_model(DEFAULT_CONFIG.scale(arith=2.0))
        assert a.mul_fu == pytest.approx(2 * 6.34)
        assert a.add_fu == pytest.approx(2 * 0.96)

    def test_area_scales_with_bandwidth(self):
        a = area_model(DEFAULT_CONFIG.scale(hbm=2.0))
        assert a.memory_phy == pytest.approx(2 * 29.80)

    def test_as_table_keys(self):
        table = area_model().as_table()
        assert "Total NoCap" in table and "Total Compute" in table


class TestPower:
    def test_fig5_reference(self):
        rep = NoCapSimulator().simulate(1 << 24)
        p = power_model(rep)
        assert p.total_watts == pytest.approx(62.0, rel=0.02)
        frac = p.fractions()
        assert frac["FUs"] == pytest.approx(0.13, abs=0.02)
        assert frac["Register file"] == pytest.approx(0.44, abs=0.02)
        assert frac["HBM"] == pytest.approx(0.42, abs=0.02)

    def test_breakdown_stable_across_benchmarks(self):
        """Sec. VIII-B: breakdown and total power essentially identical
        across benchmarks."""
        sim = NoCapSimulator()
        totals = []
        for log_n in (24, 26, 28, 30):
            p = power_model(sim.simulate(1 << log_n))
            totals.append(p.total_watts)
            assert p.fractions()["HBM"] == pytest.approx(0.42, abs=0.06)
        assert max(totals) / min(totals) < 1.1

    def test_energy_constants_physical(self):
        from repro.nocap.power import ENERGY_PER_HBM_BYTE

        # HBM2E is a few pJ/bit; sanity-check the fitted constant.
        pj_per_bit = ENERGY_PER_HBM_BYTE * 1e12 / 8
        assert 2 < pj_per_bit < 12
