"""Tests for the Poseidon-style field-friendly hash (native + gadget)."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.field.goldilocks import MODULUS
from repro.hashing import poseidon
from repro.r1cs import Circuit
from repro.r1cs.poseidon_gadget import (
    hash2_gadget,
    merkle_verify_gadget,
    permutation_gadget,
)

felt = st.integers(0, MODULUS - 1)


class TestNative:
    def test_deterministic(self):
        assert poseidon.hash2(1, 2) == poseidon.hash2(1, 2)

    def test_order_sensitive(self):
        assert poseidon.hash2(1, 2) != poseidon.hash2(2, 1)

    @given(felt, felt)
    def test_output_in_field(self, a, b):
        assert 0 <= poseidon.hash2(a, b) < MODULUS

    def test_sbox_is_permutation_exponent(self):
        # gcd(7, p-1) == 1 so x^7 is a bijection.
        import math

        assert math.gcd(poseidon.ALPHA, MODULUS - 1) == 1

    def test_permutation_invertible_mix(self):
        # The mix matrix I + J has determinant != 0 mod p.
        import numpy as np

        m = [[2, 1, 1], [1, 2, 1], [1, 1, 2]]
        det = (m[0][0] * (m[1][1] * m[2][2] - m[1][2] * m[2][1])
               - m[0][1] * (m[1][0] * m[2][2] - m[1][2] * m[2][0])
               + m[0][2] * (m[1][0] * m[2][1] - m[1][1] * m[2][0]))
        assert det % MODULUS != 0

    def test_avalanche(self):
        a = poseidon.hash2(0, 0)
        b = poseidon.hash2(1, 0)
        # Any difference should look random; check many bits flip.
        assert bin(a ^ b).count("1") > 16

    def test_hash_many_length_separated(self):
        assert poseidon.hash_many([1, 2, 3]) != poseidon.hash_many([1, 2, 3, 0])
        assert poseidon.hash_many([]) != poseidon.hash_many([0])

    def test_permutation_shape_check(self):
        with pytest.raises(ValueError):
            poseidon.permutation([1, 2])

    def test_round_constants_in_field(self):
        for row in poseidon.ROUND_CONSTANTS:
            assert len(row) == poseidon.WIDTH
            assert all(0 <= c < MODULUS for c in row)
        assert len(poseidon.ROUND_CONSTANTS) == (
            poseidon.FULL_ROUNDS + poseidon.PARTIAL_ROUNDS)


class TestMerkle:
    def test_root_and_paths(self):
        leaves = [i * 7 + 1 for i in range(16)]
        root = poseidon.merkle_root(leaves)
        for i in range(16):
            path = poseidon.merkle_path(leaves, i)
            assert len(path) == 4
            assert poseidon.merkle_verify(root, leaves[i], i, path)

    def test_wrong_leaf_rejected(self):
        leaves = [1, 2, 3, 4]
        root = poseidon.merkle_root(leaves)
        path = poseidon.merkle_path(leaves, 2)
        assert not poseidon.merkle_verify(root, 99, 2, path)

    def test_wrong_index_rejected(self):
        leaves = [1, 2, 3, 4]
        root = poseidon.merkle_root(leaves)
        path = poseidon.merkle_path(leaves, 2)
        assert not poseidon.merkle_verify(root, leaves[2], 3, path)

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            poseidon.merkle_root([1, 2, 3])

    def test_path_index_bounds(self):
        with pytest.raises(IndexError):
            poseidon.merkle_path([1, 2], 2)


class TestGadget:
    def test_permutation_matches_native(self):
        circuit = Circuit()
        state = [circuit.witness(v) for v in (5, 6, 7)]
        out = permutation_gadget(circuit, state)
        assert [w.value for w in out] == poseidon.permutation([5, 6, 7])
        r1cs, pub, wit = circuit.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_permutation_constraint_count(self):
        """4 muls per S-box: 4 * (3*RF + RP) = 184 constraints."""
        circuit = Circuit()
        state = [circuit.witness(v) for v in (1, 2, 3)]
        permutation_gadget(circuit, state)
        expected = 4 * (3 * poseidon.FULL_ROUNDS + poseidon.PARTIAL_ROUNDS)
        assert circuit.num_constraints == expected

    @given(felt, felt)
    def test_hash2_matches_native(self, a, b):
        circuit = Circuit()
        h = hash2_gadget(circuit, circuit.witness(a), circuit.witness(b))
        assert h.value == poseidon.hash2(a, b)

    def test_merkle_gadget_accepts_valid_path(self):
        leaves = [i + 100 for i in range(8)]
        root = poseidon.merkle_root(leaves)
        index = 6
        circuit = Circuit()
        root_w = circuit.public(root)
        leaf = circuit.witness(leaves[index])
        bits = [circuit.witness((index >> k) & 1) for k in range(3)]
        for b in bits:
            circuit.assert_bool(b)
        sibs = [circuit.witness(s)
                for s in poseidon.merkle_path(leaves, index)]
        merkle_verify_gadget(circuit, root_w, leaf, bits, sibs)
        r1cs, pub, wit = circuit.compile()
        assert r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_merkle_gadget_rejects_wrong_root(self):
        leaves = [i + 100 for i in range(8)]
        root = poseidon.merkle_root(leaves)
        circuit = Circuit()
        root_w = circuit.public((root + 1) % MODULUS)
        leaf = circuit.witness(leaves[0])
        bits = [circuit.witness(0) for _ in range(3)]
        for b in bits:
            circuit.assert_bool(b)
        sibs = [circuit.witness(s) for s in poseidon.merkle_path(leaves, 0)]
        merkle_verify_gadget(circuit, root_w, leaf, bits, sibs)
        r1cs, pub, wit = circuit.compile()
        assert not r1cs.is_satisfied(r1cs.assemble_z(pub, wit))

    def test_merkle_gadget_depth_mismatch(self):
        circuit = Circuit()
        with pytest.raises(ValueError):
            merkle_verify_gadget(circuit, circuit.constant(0),
                                 circuit.constant(0),
                                 [circuit.constant(0)], [])
