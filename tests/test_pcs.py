"""Tests for the Orion polynomial commitment scheme."""

import copy

import numpy as np
import pytest

from repro.code import ExpanderCode, ReedSolomonCode
from repro.field import vector as fv
from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.multilinear import mle_eval
from repro.pcs import OrionPCS, PCSParams


def _setup(log_n=8, rows=16, code=None, zk=True, seed=3):
    rng = np.random.default_rng(seed)
    pcs = OrionPCS(code=code or ReedSolomonCode(num_queries=20),
                   params=PCSParams(num_rows=rows, zk_mask=zk), rng=rng)
    table = fv.rand_vector(1 << log_n, rng)
    point = [int(x) for x in fv.rand_vector(log_n, rng)]
    return pcs, table, point


class TestCommitOpenVerify:
    @pytest.mark.parametrize("log_n,rows", [(6, 4), (8, 16), (10, 128),
                                            (4, 16), (7, 1)])
    def test_roundtrip(self, log_n, rows):
        pcs, table, point = _setup(log_n, rows)
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        assert pcs.verify(com, point, value, proof, Transcript())

    def test_expander_code_roundtrip(self):
        pcs, table, point = _setup(8, 8, code=ExpanderCode())
        pcs.code.num_queries = 20  # keep the test fast
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        assert pcs.verify(com, point, value, proof, Transcript())

    def test_no_mask_roundtrip(self):
        pcs, table, point = _setup(8, 16, zk=False)
        com, state = pcs.commit(table)
        proof = pcs.open(state, com, point, Transcript())
        assert pcs.verify(com, point, mle_eval(table, point), proof,
                          Transcript())

    def test_non_power_of_two_rejected(self):
        pcs, _, _ = _setup()
        with pytest.raises(ValueError):
            pcs.commit(fv.zeros(12))

    def test_rows_capped_for_tiny_tables(self):
        pcs, _, _ = _setup(2, 128)
        com, _ = pcs.commit(fv.ones(4))
        assert com.num_rows == 4


class TestRejections:
    def test_wrong_value(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        assert not pcs.verify(com, point, (value + 1) % MODULUS, proof,
                              Transcript())

    def test_wrong_point(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        other = list(point)
        other[0] = (other[0] + 1) % MODULUS
        assert not pcs.verify(com, other, value, proof, Transcript())

    def test_tampered_eval_row(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.eval_row = bad.eval_row.copy()
        bad.eval_row[0] = np.uint64((int(bad.eval_row[0]) + 1) % MODULUS)
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_tampered_proximity_row(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.proximity_rows[0] = bad.proximity_rows[0].copy()
        bad.proximity_rows[0][0] ^= np.uint64(1)
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_tampered_column(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.columns[2] = bad.columns[2].copy()
        bad.columns[2][1] ^= np.uint64(1)
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_swapped_columns(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.columns[0], bad.columns[1] = bad.columns[1], bad.columns[0]
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_wrong_root(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        com2 = copy.deepcopy(com)
        com2.root = b"\x00" * 32
        assert not pcs.verify(com2, point, value, proof, Transcript())

    def test_commitment_binding_to_other_polynomial(self):
        """A proof for one polynomial must not verify against the
        commitment to a different one."""
        pcs, table, point = _setup()
        rng = np.random.default_rng(9)
        other = fv.rand_vector(len(table), rng)
        com_other, state_other = pcs.commit(other)
        proof_other = pcs.open(state_other, com_other, point, Transcript())
        # Claim the first table's value under the other commitment.
        value = mle_eval(table, point)
        if value != mle_eval(other, point):
            assert not pcs.verify(com_other, point, value, proof_other,
                                  Transcript())

    def test_wrong_point_dimension(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        proof = pcs.open(state, com, point, Transcript())
        assert not pcs.verify(com, point[:-1], 0, proof, Transcript())


class TestZeroKnowledgeMask:
    def test_proximity_rows_are_masked(self):
        """With the zk mask, the proximity responses differ from the raw
        gamma-combination of the data rows."""
        pcs, table, point = _setup(8, 16, zk=True)
        com, state = pcs.commit(table)
        proof = pcs.open(state, com, point, Transcript())
        # Recompute the unmasked combination with the same transcript.
        tr = Transcript()
        tr.absorb_digest(b"pcs/root", com.root)
        gamma = tr.challenge_vector(b"pcs/gamma0", com.num_rows)
        from repro.multilinear import combine_rows

        unmasked = combine_rows(state.matrix[:com.num_rows], gamma)
        assert (proof.proximity_rows[0] != unmasked).any()

    def test_mask_is_random_per_commit(self):
        pcs, table, _ = _setup(8, 16, zk=True)
        _, s1 = pcs.commit(table)
        _, s2 = pcs.commit(table)
        assert (s1.matrix[-1] != s2.matrix[-1]).any()


class TestSizes:
    def test_proof_size_accounting(self):
        pcs, table, point = _setup(10, 16)
        com, state = pcs.commit(table)
        proof = pcs.open(state, com, point, Transcript())
        size = proof.size_bytes()
        assert size > 0
        # Recompute by parts.
        expected = (sum(r.size for r in proof.proximity_rows) * 8
                    + proof.eval_row.size * 8
                    + sum(c.size for c in proof.columns) * 8
                    + proof.merkle.size_bytes())
        assert size == expected

    def test_multiproof_smaller_than_individual_paths(self):
        """The shared multiproof must beat per-query authentication paths."""
        pcs, table, point = _setup(10, 16)
        com, state = pcs.commit(table)
        proof = pcs.open(state, com, point, Transcript())
        individual = sum(state.tree.open(j).size_bytes()
                         for j in proof.query_indices)
        assert proof.merkle.size_bytes() < individual

    def test_more_queries_bigger_proof(self):
        small_pcs = OrionPCS(code=ReedSolomonCode(num_queries=10),
                             params=PCSParams(num_rows=16))
        big_pcs = OrionPCS(code=ReedSolomonCode(num_queries=40),
                           params=PCSParams(num_rows=16))
        rng = np.random.default_rng(4)
        table = fv.rand_vector(1 << 10, rng)
        point = [int(x) for x in fv.rand_vector(10, rng)]
        sizes = []
        for pcs in (small_pcs, big_pcs):
            com, state = pcs.commit(table)
            sizes.append(pcs.open(state, com, point, Transcript()).size_bytes())
        assert sizes[1] > sizes[0]


class TestMalformedProofs:
    def test_missing_proximity_row(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.proximity_rows.pop()
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_extra_proximity_row(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.proximity_rows.append(bad.proximity_rows[0].copy())
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_dropped_column(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.columns.pop()
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_tampered_multiproof_node(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        assert proof.merkle.nodes, "expected shipped sibling digests"
        bad = copy.deepcopy(proof)
        bad.merkle.nodes[0] = b"\xff" * 32
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_truncated_multiproof_nodes(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.merkle.nodes.pop()
        assert not pcs.verify(com, point, value, bad, Transcript())

    def test_truncated_column(self):
        pcs, table, point = _setup()
        com, state = pcs.commit(table)
        value = mle_eval(table, point)
        proof = pcs.open(state, com, point, Transcript())
        bad = copy.deepcopy(proof)
        bad.columns[0] = bad.columns[0][:-1]
        assert not pcs.verify(com, point, value, bad, Transcript())
