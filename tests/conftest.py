"""Shared fixtures and hypothesis strategies for the test suite."""

from __future__ import annotations

import random

import numpy as np
import pytest
from hypothesis import HealthCheck, settings

from repro.field.goldilocks import MODULUS

# Keep hypothesis fast and deterministic in CI-style runs.
settings.register_profile(
    "repro",
    max_examples=25,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile("repro")


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture
def pyrng() -> random.Random:
    return random.Random(0xC0FFEE)


def field_elements(draw, st, n: int):
    """Draw a list of n field elements (helper for hypothesis tests)."""
    return draw(st.lists(st.integers(0, MODULUS - 1), min_size=n, max_size=n))
