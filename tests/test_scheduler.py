"""Tests for the macro-op ISA and the static scheduler."""

import pytest

from repro.nocap import DEFAULT_CONFIG, Instruction, Opcode, Program
from repro.nocap.isa import vadd, vhash, vload, vmul, vntt, vshuf, vstore
from repro.nocap.scheduler import (
    PIPELINE_LATENCY,
    occupancy_cycles,
    schedule_program,
    sumcheck_round_program,
    vector_chain_program,
)


class TestISA:
    def test_builders(self):
        ins = vmul("v2", "v0", "v1", 2048)
        assert ins.opcode is Opcode.VMUL
        assert ins.dst == "v2" and ins.srcs == ("v0", "v1")
        assert ins.functional_unit == "mul"

    def test_vector_length_bounds(self):
        with pytest.raises(ValueError):
            Instruction(Opcode.VADD, 1 << 17, dst="v0", srcs=("a", "b"))
        # control instructions carry no vector
        Instruction(Opcode.DELAY, 0, imm=5)

    def test_fu_mapping(self):
        assert vadd("d", "a", "b", 128).functional_unit == "add"
        assert vhash("d", "a", "b", 128).functional_unit == "hash"
        assert vntt("d", "a", 128).functional_unit == "ntt"
        assert vshuf("d", "a", 128).functional_unit == "shuffle"
        assert vload("d", 0, 128).functional_unit == "mem"
        assert vstore("a", 0, 128).functional_unit == "mem"

    def test_program_registers(self):
        p = Program()
        p.append(vload("v0", 0, 128))
        p.append(vmul("v1", "v0", "v0", 128))
        assert p.registers() == {"v0", "v1"}
        assert len(p) == 2


class TestOccupancy:
    def test_full_width_op_single_cycle(self):
        assert occupancy_cycles(vmul("d", "a", "b", 2048), DEFAULT_CONFIG) == 1

    def test_wide_vector_multiple_cycles(self):
        assert occupancy_cycles(vmul("d", "a", "b", 8192), DEFAULT_CONFIG) == 4

    def test_narrow_fu_slower(self):
        # 2048 elements through the 128-lane hash FU: 16 cycles.
        assert occupancy_cycles(vhash("d", "a", "b", 2048), DEFAULT_CONFIG) == 16
        # and through the 64-lane NTT FU: 32 cycles.
        assert occupancy_cycles(vntt("d", "a", 2048), DEFAULT_CONFIG) == 32

    def test_ntt_base_size_enforced(self):
        with pytest.raises(ValueError):
            occupancy_cycles(vntt("d", "a", 1 << 13), DEFAULT_CONFIG)


class TestScheduling:
    def test_dependent_chain_serializes(self):
        """A RAW chain accrues full latency per op (no overlap)."""
        prog = vector_chain_program(2048, depth=3)
        sch = schedule_program(prog)
        mul_lat = PIPELINE_LATENCY["mul"]
        mem_lat = PIPELINE_LATENCY["mem"]
        # load (1 cycle occ + mem latency), then 3 dependent muls,
        # then the store.
        load_done = 1 + mem_lat  # occupancy for 2048 elems at HBM rate is >=1
        # Each mul starts when its source is ready.
        expect_min = load_done + 3 * (1 + mul_lat)
        assert sch.makespan >= expect_min

    def test_independent_ops_pipeline(self):
        """Independent macro-ops on one FU issue back-to-back."""
        prog = Program()
        for i in range(8):
            prog.append(vmul(f"d{i}", f"a{i}", f"b{i}", 2048))
        sch = schedule_program(prog)
        starts = [op.start_cycle for op in sch.ops]
        assert starts == list(range(8))  # one issue per cycle
        assert sch.busy_cycles["mul"] == 8

    def test_different_fus_overlap(self):
        prog = Program()
        prog.append(vmul("m", "a", "b", 2048))
        prog.append(vadd("s", "c", "d", 2048))
        sch = schedule_program(prog)
        assert sch.ops[0].start_cycle == 0
        assert sch.ops[1].start_cycle == 0  # no structural or data hazard

    def test_raw_dependency_respected(self):
        prog = Program()
        prog.append(vmul("x", "a", "b", 2048))
        prog.append(vadd("y", "x", "c", 2048))
        sch = schedule_program(prog)
        assert sch.ops[1].start_cycle >= sch.ops[0].done_cycle

    def test_waw_dependency_respected(self):
        prog = Program()
        prog.append(vmul("x", "a", "b", 2048))
        prog.append(vadd("x", "c", "d", 2048))
        sch = schedule_program(prog)
        assert sch.ops[1].start_cycle >= sch.ops[0].done_cycle

    def test_memory_bandwidth_occupancy(self):
        """Loads occupy the memory interface at 125 elements/cycle."""
        prog = Program()
        prog.append(vload("v0", 0, 64000))
        sch = schedule_program(prog)
        assert sch.ops[0].occupancy == pytest.approx(64000 / 125, abs=1)

    def test_utilization(self):
        prog = Program()
        for i in range(4):
            prog.append(vmul(f"d{i}", f"a{i}", f"b{i}", 2048))
        sch = schedule_program(prog)
        assert 0 < sch.utilization("mul") <= 1.0
        assert sch.utilization("hash") == 0.0

    def test_branch_rejected(self):
        prog = Program()
        prog.append(Instruction(Opcode.BRANCH, 0, imm=-4))
        with pytest.raises(ValueError):
            schedule_program(prog)

    def test_sumcheck_round_program_schedules(self):
        sch = schedule_program(sumcheck_round_program(1 << 14))
        assert sch.makespan > 0
        # The round uses mul, add, shuffle, and memory.
        for unit in ("mul", "add", "shuffle", "mem"):
            assert sch.busy_cycles.get(unit, 0) > 0, unit

    def test_wider_fu_shortens_schedule(self):
        prog = sumcheck_round_program(1 << 14)
        base = schedule_program(prog, DEFAULT_CONFIG)
        wide = schedule_program(prog, DEFAULT_CONFIG.scale(arith=4.0))
        assert wide.makespan <= base.makespan
