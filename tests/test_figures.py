"""Tests for the ASCII figure rendering helpers."""

import pytest

from repro.analysis.figures import ascii_bar_chart, ascii_line_chart


class TestLineChart:
    def test_contains_markers_and_legend(self):
        out = ascii_line_chart({"a": [(1, 1), (2, 2)], "b": [(1, 2), (2, 1)]},
                               title="T")
        assert "T" in out
        assert "o=a" in out and "*=b" in out
        assert "o" in out and "*" in out

    def test_log_x(self):
        out = ascii_line_chart({"s": [(0.25, 1), (4.0, 2)]}, log_x=True)
        assert "0.25" in out and "4" in out

    def test_empty(self):
        assert ascii_line_chart({}, title="empty") == "empty"

    def test_single_point(self):
        out = ascii_line_chart({"p": [(5, 7)]})
        assert "o" in out

    def test_dimensions(self):
        out = ascii_line_chart({"a": [(0, 0), (1, 1)]}, width=30, height=8)
        # title absent: height rows + axis + labels + legend
        assert len(out.splitlines()) == 8 + 3


class TestBarChart:
    def test_bars_scale(self):
        out = ascii_bar_chart({"big": 10.0, "small": 1.0}, width=20, unit="W")
        lines = out.splitlines()
        assert lines[0].count("#") > lines[1].count("#")
        assert "10W" in lines[0]

    def test_empty(self):
        assert ascii_bar_chart({}, title="t") == "t"

    def test_zero_value(self):
        out = ascii_bar_chart({"z": 0.0, "x": 1.0})
        assert "z" in out
