"""Equivalence tests pinning the batched hot-path kernels to reference
semantics.

Every optimized kernel (batched RS encoding, vectorized Merkle hashing,
split-accumulate reductions, the fused multiply-accumulate, the stacked
SpMV) is checked against a slow, obviously-correct oracle — object-dtype
numpy, pure-Python ints, or the pre-batching per-item formulation — on
random AND adversarial inputs (all p-1, non-canonical representatives).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, strategies as st

from repro.code.reed_solomon import ReedSolomonCode
from repro.field import vector as fv
from repro.field.goldilocks import MODULUS, inv
from repro.hashing.fieldhash import hash_columns, hash_elements, hash_pair
from repro.hashing.merkle import (
    MerkleTree,
    open_many,
    verify_many,
)
from repro.ntt.radix2 import ntt, ntt_zero_padded
from repro.r1cs.matrices import SparseMatrix, StackedMatrices
from repro.spartan.matrixeval import combined_matrix_row
from repro.workloads import synthetic_r1cs

P_MINUS_1 = MODULUS - 1


def random_field(rng, n):
    return rng.integers(0, MODULUS, size=n, dtype=np.uint64)


def random_u64(rng, n):
    """Arbitrary uint64 values, including non-canonical representatives."""
    return rng.integers(0, 1 << 63, size=n, dtype=np.uint64) << np.uint64(1) \
        | rng.integers(0, 2, size=n, dtype=np.uint64)


# ---------------------------------------------------------------------------
# Batched Reed-Solomon encoding == per-row reference
# ---------------------------------------------------------------------------

class TestBatchedEncoding:
    def test_encode_rows_matches_per_row_encode(self, rng):
        code = ReedSolomonCode()
        matrix = random_field(rng, (9, 64))
        batched = code.encode_rows(matrix)
        for i in range(matrix.shape[0]):
            row = code.encode(matrix[i])
            assert np.array_equal(batched[i], row)

    @pytest.mark.parametrize("n,domain", [(1, 1), (1, 8), (4, 4), (4, 8),
                                          (8, 32), (16, 64), (64, 256)])
    def test_ntt_zero_padded_matches_padded_ntt(self, rng, n, domain):
        coeffs = random_field(rng, n)
        padded = np.zeros(domain, dtype=np.uint64)
        padded[:n] = coeffs
        assert np.array_equal(ntt_zero_padded(coeffs, domain), ntt(padded))

    def test_ntt_zero_padded_batch_dims(self, rng):
        coeffs = random_field(rng, (3, 5, 16))
        padded = np.zeros((3, 5, 64), dtype=np.uint64)
        padded[..., :16] = coeffs
        assert np.array_equal(ntt_zero_padded(coeffs, 64), ntt(padded))

    def test_ntt_zero_padded_adversarial_values(self):
        coeffs = np.full(32, P_MINUS_1, dtype=np.uint64)
        padded = np.zeros(128, dtype=np.uint64)
        padded[:32] = coeffs
        assert np.array_equal(ntt_zero_padded(coeffs, 128), ntt(padded))

    def test_ntt_zero_padded_rejects_small_domain(self):
        with pytest.raises(ValueError):
            ntt_zero_padded(np.ones(8, dtype=np.uint64), 4)


# ---------------------------------------------------------------------------
# Vectorized Merkle construction == scalar reference
# ---------------------------------------------------------------------------

def _scalar_merkle_root(leaves):
    """Reference: list-of-digests tree built pair by pair."""
    layer = list(leaves)
    size = 1 if len(layer) == 1 else 1 << (len(layer) - 1).bit_length()
    layer += [b"\x00" * 32] * (size - len(layer))
    while len(layer) > 1:
        layer = [hash_pair(layer[i], layer[i + 1])
                 for i in range(0, len(layer), 2)]
    return layer[0]


class TestVectorizedMerkle:
    @pytest.mark.parametrize("num_cols", [1, 2, 3, 8, 13, 32])
    def test_root_matches_scalar_reference(self, rng, num_cols):
        matrix = random_field(rng, (6, num_cols))
        tree = MerkleTree.from_columns(matrix)
        leaves = [hash_elements(matrix[:, j]) for j in range(num_cols)]
        assert tree.root == _scalar_merkle_root(leaves)

    def test_hash_columns_matches_per_column(self, rng):
        matrix = random_field(rng, (7, 11))
        batched = hash_columns(matrix)
        assert batched == [hash_elements(matrix[:, j]) for j in range(11)]


# ---------------------------------------------------------------------------
# Field-vector kernels vs object-dtype / pure-Python oracles
# ---------------------------------------------------------------------------

class TestFieldKernels:
    @pytest.mark.parametrize("make", [
        lambda rng: random_field(rng, 1000),
        lambda rng: np.full(1000, P_MINUS_1, dtype=np.uint64),
        lambda rng: random_u64(rng, 1000),  # non-canonical representatives
    ])
    def test_vsum_vs_object_dtype(self, rng, make):
        a = make(rng)
        expected = int(np.sum(a.astype(object))) % MODULUS
        assert fv.vsum(a) == expected

    def test_powers_vs_python_loop(self, rng):
        base = int(rng.integers(0, MODULUS, dtype=np.uint64))
        expected, acc = [], 1
        for _ in range(257):
            expected.append(acc)
            acc = acc * base % MODULUS
        assert fv.to_ints(fv.powers(base, 257)) == expected

    def test_inv_vector_vs_fermat(self, rng):
        a = random_field(rng, 97)
        a[a == 0] = 1
        out = fv.inv_vector(a)
        assert fv.to_ints(out) == [inv(int(x)) for x in a]

    def test_mul_adversarial_all_p_minus_1(self):
        a = np.full(300, P_MINUS_1, dtype=np.uint64)
        expected = P_MINUS_1 * P_MINUS_1 % MODULUS
        assert np.all(fv.mul(a, a) == np.uint64(expected))

    def test_mul_exact_on_noncanonical_inputs(self, rng):
        a, b = random_u64(rng, 500), random_u64(rng, 500)
        expected = (a.astype(object) * b.astype(object)) % MODULUS
        assert np.array_equal(fv.mul(a, b).astype(object), expected)

    def test_mul_noncanonical_output_is_congruent(self, rng):
        a, b = random_field(rng, 500), random_field(rng, 500)
        loose = fv.mul(a, b, canonical=False).astype(object) % MODULUS
        assert np.array_equal(loose, fv.mul(a, b).astype(object))

    def test_mul_strided_input(self, rng):
        a = random_field(rng, 128).reshape(8, 16)
        sliced = a[:, 8:]  # non-contiguous, the NTT's butterfly view
        expected = (sliced.astype(object) * 3) % MODULUS
        assert np.array_equal(fv.mul_scalar(sliced, 3).astype(object), expected)

    def test_scale_add_vs_mul_then_add(self, rng):
        base, diff = random_field(rng, 777), random_field(rng, 777)
        r = int(rng.integers(0, MODULUS, dtype=np.uint64))
        expected = fv.add(base, fv.mul_scalar(diff, r))
        assert np.array_equal(fv.scale_add(base, diff, r), expected)

    def test_scale_add_adversarial(self):
        base = np.full(100, P_MINUS_1, dtype=np.uint64)
        diff = np.full(100, P_MINUS_1, dtype=np.uint64)
        expected = (P_MINUS_1 + P_MINUS_1 * P_MINUS_1) % MODULUS
        assert np.all(fv.scale_add(base, diff, P_MINUS_1) == np.uint64(expected))

    @pytest.mark.parametrize("make", [
        lambda rng: (random_field(rng, 400), random_field(rng, 400)),
        lambda rng: (random_u64(rng, 400), random_u64(rng, 400)),
        lambda rng: (np.full(4, 2**64 - 1, dtype=np.uint64),
                     np.full(4, 2**64 - 1, dtype=np.uint64)),
        lambda rng: (np.zeros(4, dtype=np.uint64),
                     np.full(4, 2**64 - 1, dtype=np.uint64)),
    ])
    def test_combine_halves_vs_int_oracle(self, rng, make):
        lo, hi = make(rng)
        expected = (lo.astype(object) + (hi.astype(object) << 32)) % MODULUS
        got = fv.combine_halves(lo, hi)
        assert np.all(got < np.uint64(MODULUS))
        assert np.array_equal(got.astype(object), expected)

    def test_asfield_uint64_above_modulus(self):
        # uint64 input >= p must be canonicalized, not passed through.
        arr = np.array([MODULUS, MODULUS + 5, 2**64 - 1], dtype=np.uint64)
        out = fv.asfield(arr)
        assert fv.to_ints(out) == [0, 5, (2**64 - 1) % MODULUS]

    def test_asfield_python_ints_above_modulus(self):
        out = fv.asfield([MODULUS + 7, -1])
        assert fv.to_ints(out) == [7, MODULUS - 1]


# ---------------------------------------------------------------------------
# Stacked SpMV == per-matrix reference
# ---------------------------------------------------------------------------

class TestStackedMatrices:
    def _system(self):
        r1cs, public, witness = synthetic_r1cs(8, band=4, seed=3)
        z = r1cs.assemble_z(public, witness)
        return r1cs, z

    def test_matvec_all_matches_individual_matvecs(self):
        r1cs, z = self._system()
        stacked = StackedMatrices([r1cs.a, r1cs.b, r1cs.c])
        for got, mat in zip(stacked.matvec_all(z), (r1cs.a, r1cs.b, r1cs.c)):
            assert np.array_equal(got, mat.matvec(z))

    def test_scaled_transpose_matches_combined_matrix_row(self, rng):
        r1cs, z = self._system()
        from repro.multilinear.mle import eq_table

        coeffs = tuple(int(c) for c in rng.integers(0, MODULUS, size=3, dtype=np.uint64))
        rx = [int(c) for c in rng.integers(0, MODULUS, size=8, dtype=np.uint64)]
        eq = eq_table(rx)
        got = r1cs.combined_transpose_matvec(coeffs, eq)
        expected = combined_matrix_row(r1cs.a, r1cs.b, r1cs.c,
                                       coeffs[0], coeffs[1], coeffs[2], rx)
        assert np.array_equal(got, np.asarray(expected, dtype=np.uint64))

    def test_matvec_rows_with_gaps(self, rng):
        # A matrix with empty rows exercises the scatter path (the dense
        # fast path returns the segment sums directly).
        m = SparseMatrix.from_entries(8, 8, [(0, 1, 5), (3, 2, 7), (7, 7, 11)])
        x = random_field(rng, 8)
        dense = m.to_dense()
        expected = [int(sum(int(dense[i, j]) * int(x[j]) for j in range(8))
                        % MODULUS) for i in range(8)]
        assert fv.to_ints(m.matvec(x)) == expected


# ---------------------------------------------------------------------------
# Merkle multiproof round-trip property (satellite: open_many/verify_many)
# ---------------------------------------------------------------------------

@st.composite
def _tree_and_queries(draw):
    num_leaves = draw(st.integers(min_value=1, max_value=40))
    queries = draw(st.lists(st.integers(0, num_leaves - 1),
                            min_size=1, max_size=24))
    # Force duplicates and boundary indices into the mix regularly.
    if draw(st.booleans()):
        queries += [0, num_leaves - 1, queries[0]]
    return num_leaves, queries


class TestMerkleMultiProof:
    @given(_tree_and_queries())
    def test_round_trip(self, case):
        num_leaves, queries = case
        leaves = [hash_elements(np.array([i, i + 1], dtype=np.uint64))
                  for i in range(num_leaves)]
        tree = MerkleTree(leaves)
        proof = open_many(tree, queries)
        assert proof.indices == sorted(set(queries))
        opened = [leaves[i] for i in proof.indices]
        assert verify_many(tree.root, opened, proof, num_leaves)

    @given(_tree_and_queries())
    def test_rejects_wrong_leaf(self, case):
        num_leaves, queries = case
        leaves = [hash_elements(np.array([i], dtype=np.uint64))
                  for i in range(num_leaves)]
        tree = MerkleTree(leaves)
        proof = open_many(tree, queries)
        opened = [leaves[i] for i in proof.indices]
        opened[0] = hash_elements(np.array([999], dtype=np.uint64))
        assert not verify_many(tree.root, opened, proof, num_leaves)

    def test_rejects_truncated_and_padded_proofs(self):
        leaves = [hash_elements(np.array([i], dtype=np.uint64))
                  for i in range(16)]
        tree = MerkleTree(leaves)
        proof = open_many(tree, [2, 9, 15])
        opened = [leaves[i] for i in proof.indices]
        assert verify_many(tree.root, opened, proof, 16)
        truncated = type(proof)(indices=proof.indices,
                                nodes=proof.nodes[:-1])
        assert not verify_many(tree.root, opened, truncated, 16)
        padded = type(proof)(indices=proof.indices,
                             nodes=proof.nodes + [b"\x00" * 32])
        assert not verify_many(tree.root, opened, padded, 16)

    def test_out_of_range_index_raises(self):
        tree = MerkleTree([hash_elements(np.array([1], dtype=np.uint64))])
        with pytest.raises(IndexError):
            open_many(tree, [1])


# ---------------------------------------------------------------------------
# Gruen eq-factorized constraint sumcheck vs the eq-table-folding reference
# ---------------------------------------------------------------------------

def _reference_constraint_sumcheck(eq, az, bz, cz, transcript, label):
    """The pre-factorization prover: eq carried as a fourth folded table,
    g sampled directly at t = 1, 2, 3."""
    from repro.field.poly import interpolate_eval

    tables = [np.asarray(t, dtype=np.uint64) for t in (eq, az, bz, cz)]
    round_evals, challenges = [], []
    current = 0
    xs = [0, 1, 2, 3]
    for rnd in range(len(tables[0]).bit_length() - 1):
        half = len(tables[0]) // 2
        bottoms = [t[:half] for t in tables]
        tops = [t[half:] for t in tables]
        diffs = [fv.sub(tp, bt) for tp, bt in zip(tops, bottoms)]

        def g_sum(eq_t, az_t, bz_t, cz_t):
            h = fv.sub(fv.mul(az_t, bz_t, canonical=False), cz_t)
            return fv.vsum(fv.mul(eq_t, h, canonical=False))

        g1 = g_sum(*tops)
        evals = [(current - g1) % MODULUS, g1]
        samples = tops
        for _t in range(2, 4):
            samples = [fv.add(s, d) for s, d in zip(samples, diffs)]
            evals.append(g_sum(*samples))
        transcript.absorb_fields(label + b"/round%d" % rnd, evals)
        r = transcript.challenge_field(label + b"/r%d" % rnd)
        challenges.append(r)
        current = interpolate_eval(xs, evals, r)
        tables = [fv.scale_add(bt, df, r) for bt, df in zip(bottoms, diffs)]
        round_evals.append(evals)
    va, vb, vc = int(tables[1][0]), int(tables[2][0]), int(tables[3][0])
    transcript.absorb_fields(label + b"/final", [va, vb, vc])
    return round_evals, (va, vb, vc), challenges


class TestGruenConstraintSumcheck:
    @pytest.mark.parametrize("log_n", [1, 3, 6])
    def test_matches_reference_prover(self, rng, log_n):
        from repro.hashing.transcript import Transcript
        from repro.multilinear.mle import eq_table
        from repro.spartan.sumcheck1 import prove_constraint_sumcheck

        n = 1 << log_n
        az = random_field(rng, n)
        bz = random_field(rng, n)
        cz = fv.mul(az, bz)  # satisfied system: claim is 0
        tau = [int(t) for t in rng.integers(0, MODULUS, size=log_n,
                                            dtype=np.uint64)]
        got = prove_constraint_sumcheck(tau, az, bz, cz, Transcript(),
                                        b"test/sc1")
        want = _reference_constraint_sumcheck(eq_table(tau), az, bz, cz,
                                              Transcript(), b"test/sc1")
        assert got == want
