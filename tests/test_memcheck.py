"""Tests for Spark-style offline memory checking (multiset hashes)."""

import pytest

from repro.field.goldilocks import MODULUS
from repro.hashing import Transcript
from repro.spartan.memcheck import (
    DEFAULT_INSTANTIATIONS,
    MemoryTrace,
    check_sets,
    check_trace,
    memcheck_cost,
    multiset_hash,
)


class TestMultisetHash:
    def test_order_independent(self):
        s1 = [(0, 5, 1), (3, 7, 2), (1, 1, 0)]
        s2 = list(reversed(s1))
        assert multiset_hash(s1, 99, 1234) == multiset_hash(s2, 99, 1234)

    def test_multiplicity_sensitive(self):
        assert multiset_hash([(0, 5, 1)], 9, 7) != \
            multiset_hash([(0, 5, 1), (0, 5, 1)], 9, 7)

    def test_value_sensitive(self):
        assert multiset_hash([(0, 5, 1)], 9, 7) != \
            multiset_hash([(0, 6, 1)], 9, 7)

    def test_empty_set(self):
        assert multiset_hash([], 9, 7) == 1


class TestMemoryTrace:
    def test_honest_trace_accepted(self):
        trace = MemoryTrace(initial=[10, 20, 30, 40])
        for addr in (0, 2, 2, 1, 3, 0):
            trace.read(addr)
        assert check_trace(trace, Transcript())

    def test_read_returns_value(self):
        trace = MemoryTrace(initial=[10, 20])
        assert trace.read(1) == 20
        assert trace.read(1) == 20

    def test_timestamps_advance(self):
        trace = MemoryTrace(initial=[1, 2])
        trace.read(0)
        trace.read(0)
        assert trace.reads[0][2] == 0   # first read sees init timestamp
        assert trace.reads[1][2] == 1   # second sees the bumped one

    def test_forged_read_value_rejected(self):
        trace = MemoryTrace(initial=[10, 20, 30, 40])
        for addr in (0, 1, 2, 3):
            trace.read(addr)
        # Claim a read returned a different value.
        a, v, t = trace.reads[2]
        trace.reads[2] = (a, (v + 1) % MODULUS, t)
        assert not check_trace(trace, Transcript())

    def test_replayed_timestamp_rejected(self):
        """Reusing a stale timestamp (a double-spend-style attack) breaks
        the multiset equality."""
        trace = MemoryTrace(initial=[10, 20])
        trace.read(0)
        trace.read(0)
        a, v, t = trace.reads[1]
        trace.reads[1] = (a, v, 0)  # pretend we read the initial version
        assert not check_trace(trace, Transcript())

    def test_dropped_read_rejected(self):
        trace = MemoryTrace(initial=[10, 20])
        trace.read(0)
        trace.read(1)
        trace.reads.pop()
        assert not check_trace(trace, Transcript())

    def test_extra_write_rejected(self):
        trace = MemoryTrace(initial=[10, 20])
        trace.read(0)
        trace.writes.append((1, 99, 5))
        assert not check_trace(trace, Transcript())


class TestCheckSets:
    def test_cardinality_mismatch_short_circuits(self):
        assert not check_sets([(0, 1, 0)], [], [], [], Transcript())

    def test_permuted_sets_accepted(self):
        trace = MemoryTrace(initial=[5, 6, 7, 8])
        for addr in (3, 1, 1, 0, 2):
            trace.read(addr)
        reads = list(reversed(trace.reads))
        writes = list(reversed(trace.writes))
        assert check_sets(trace.init_set(), writes, reads,
                          trace.final_set(), Transcript())

    def test_instantiation_count(self):
        assert DEFAULT_INSTANTIATIONS == 4  # Sec. VII-A


class TestCost:
    def test_cost_scales_with_reads_and_instantiations(self):
        base = memcheck_cost(1000, 256)
        more_reads = memcheck_cost(2000, 256)
        assert more_reads.mul > base.mul
        fewer = memcheck_cost(1000, 256, instantiations=1)
        assert base.mul == 4 * fewer.mul
