"""Tests for the task linker (Sec. VII): macro-op program composition and
cross-checks against the task-level model."""

import pytest

from repro.nocap import DEFAULT_CONFIG, NoCapSimulator
from repro.nocap.isa import Opcode
from repro.nocap.linker import (
    link_prover_program,
    simulate_linked_prover,
)


class TestProgramComposition:
    def test_program_builds(self):
        prog = link_prover_program(1 << 12)
        assert len(prog) > 100
        opcodes = {ins.opcode for ins in prog.instructions}
        # Every primitive appears in the linked prover.
        for op in (Opcode.VLOAD, Opcode.VSTORE, Opcode.VADD, Opcode.VMUL,
                   Opcode.VHASH, Opcode.VNTT, Opcode.VSHUF):
            assert op in opcodes, op

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ValueError):
            link_prover_program(1000)

    def test_oversized_statement_rejected(self):
        with pytest.raises(ValueError):
            link_prover_program(1 << 17)

    def test_repetitions_grow_program(self):
        one = link_prover_program(1 << 12, repetitions=1)
        three = link_prover_program(1 << 12, repetitions=3)
        assert len(three) > 2 * len(one)


class TestScheduledExecution:
    def test_schedules_and_uses_all_units(self):
        _, sch = simulate_linked_prover(1 << 12)
        assert sch.makespan > 0
        for unit in ("mul", "add", "hash", "ntt", "shuffle", "mem"):
            assert sch.busy_cycles.get(unit, 0) > 0, unit

    def test_makespan_grows_with_statement(self):
        _, small = simulate_linked_prover(1 << 12)
        _, big = simulate_linked_prover(1 << 14)
        assert big.makespan > 1.5 * small.makespan

    def test_within_band_of_task_model(self):
        """The instruction-level schedule and the task-level model agree
        to within a small factor on an on-chip statement (the task model
        additionally charges the Spark sumchecks the linker omits)."""
        _, sch = simulate_linked_prover(1 << 12, repetitions=1)
        rep = NoCapSimulator(DEFAULT_CONFIG).simulate(1 << 12, repetitions=1)
        ratio = rep.total_cycles / sch.makespan
        assert 0.5 < ratio < 6.0

    def test_wider_arithmetic_helps(self):
        _, base = simulate_linked_prover(1 << 14)
        _, wide = simulate_linked_prover(1 << 14,
                                         DEFAULT_CONFIG.scale(arith=4.0))
        assert wide.makespan <= base.makespan
