#!/usr/bin/env python
"""Load generator for the proving service: throughput/latency under a
sustained mixed prove/verify workload.

Spawns a real ``repro serve`` daemon (its own process, unix socket),
replays a mixed request stream from concurrent clients, then replays the
prove set a second time to measure the proof cache and assert that every
cached envelope is **byte-identical** to its first-run counterpart.
Per-request latencies land in the fixed-bucket
:class:`repro.obs.metrics.Histogram` (one per thread, merged at the
end), so the recorded p50/p99 share bucket edges with every other bench
artifact and ``tools/bench_diff.py`` can gate them.

Writes ``BENCH_service.json`` (schema ``bench-service-v1``) with
latency quantiles per job kind, throughput, queue high-water marks, and
cache hit rates.  Exit status is nonzero if any job was dropped — a
submission that neither completed nor failed typed — or a cached repeat
came back with different bytes.

Run:
    PYTHONPATH=src python tools/bench_service.py [--quick] \
        [--out BENCH_service.json]
"""

from __future__ import annotations

import argparse
import itertools
import json
import os
import subprocess
import sys
import tempfile
import threading
import time
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.obs.metrics import Histogram  # noqa: E402
from repro.service import QueueFullError, ServiceClient  # noqa: E402

#: Workloads in the request mix (small enough for the test preset to
#: keep a CI run under a minute, distinct enough to exercise the key
#: cache across statements).
WORKLOADS = ("litmus", "sha", "aes")

#: Distinct seeds per workload in the cold phase; the repeat phase
#: replays the same (workload, seed) pairs so every one is a cache hit.
SEEDS = (1, 2, 3)


class Worker(threading.Thread):
    """One bench client: drains the shared request list, records
    per-request latency, retries 429 backpressure with backoff."""

    def __init__(self, idx, sock_path, requests, lock, results):
        super().__init__(name=f"bench-client-{idx}", daemon=True)
        self.sock_path = sock_path
        self.client_id = f"bench-{idx}"
        self.requests = requests
        self.lock = lock
        self.results = results
        self.hist = {"prove": Histogram(), "verify": Histogram()}
        self.failures = []
        self.backpressure_retries = 0

    def run(self):
        with ServiceClient(self.sock_path,
                           client_id=self.client_id) as svc:
            while True:
                with self.lock:
                    if not self.requests:
                        return
                    req = self.requests.pop()
                self._one(svc, req)

    def _one(self, svc, req):
        kind, workload, seed, envelope = req
        t0 = time.perf_counter()
        backoff = 0.05
        while True:
            try:
                if kind == "prove":
                    env = svc.prove(workload, seed=seed, wait_s=300)
                    with self.lock:
                        self.results.setdefault((workload, seed),
                                                env)
                else:
                    if not svc.verify(envelope, wait_s=300):
                        self.failures.append(
                            (kind, workload, seed, "verify returned False"))
                break
            except QueueFullError:
                # Backpressure is the contract, not a failure: back off
                # and resubmit (t0 keeps counting — the queue wait is
                # part of the latency a saturating client observes).
                self.backpressure_retries += 1
                time.sleep(backoff)
                backoff = min(backoff * 2, 1.0)
            except Exception as exc:  # noqa: BLE001 - tallied, not fatal
                self.failures.append(
                    (kind, workload, seed, f"{type(exc).__name__}: {exc}"))
                break
        self.hist[kind].observe(time.perf_counter() - t0)


def start_daemon(sock_path, preset, queue_depth):
    env = dict(os.environ)
    env["PYTHONPATH"] = str(REPO_ROOT / "src") + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else "")
    proc = subprocess.Popen(
        [sys.executable, "-m", "repro", "serve",
         "--unix-socket", sock_path, "--preset", preset,
         "--queue-depth", str(queue_depth)],
        env=env, stdout=subprocess.PIPE, stderr=subprocess.STDOUT,
        text=True)
    deadline = time.monotonic() + 60
    while time.monotonic() < deadline:
        if proc.poll() is not None:
            out = proc.stdout.read() if proc.stdout else ""
            raise SystemExit(
                f"bench_service: daemon exited early ({proc.returncode}):"
                f"\n{out}")
        if os.path.exists(sock_path):
            try:
                with ServiceClient(sock_path, connect_timeout_s=2) as svc:
                    svc.ping()
                return proc
            except OSError:
                pass
        time.sleep(0.05)
    proc.kill()
    raise SystemExit("bench_service: daemon never came up")


def run_phase(sock_path, requests, concurrency, results):
    """Drive ``requests`` through ``concurrency`` clients; returns
    (merged histograms, failures, backpressure retries, wall seconds)."""
    pending = list(requests)
    lock = threading.Lock()
    workers = [Worker(i, sock_path, pending, lock, results)
               for i in range(concurrency)]
    t0 = time.perf_counter()
    for w in workers:
        w.start()
    for w in workers:
        w.join()
    wall = time.perf_counter() - t0
    hist = {"prove": Histogram(), "verify": Histogram()}
    failures, retries = [], 0
    for w in workers:
        for kind in hist:
            hist[kind].merge(w.hist[kind])
        failures.extend(w.failures)
        retries += w.backpressure_retries
    return hist, failures, retries, wall


def hist_summary(hist):
    return {
        "count": hist.count,
        "p50_s": hist.quantile(0.5),
        "p99_s": hist.quantile(0.99),
        "mean_s": round(hist.sum / hist.count, 6) if hist.count else 0.0,
        "histogram": hist.to_dict(),
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="CI-sized run (still >= 50 mixed requests)")
    ap.add_argument("--requests", type=int, default=None, metavar="N",
                    help="total mixed requests (default 120, quick 54)")
    ap.add_argument("--concurrency", type=int, default=4, metavar="C",
                    help="concurrent bench clients (default 4)")
    ap.add_argument("--preset", default="test-fast",
                    help="security preset for prove jobs (default "
                         "%(default)s)")
    ap.add_argument("--queue-depth", type=int, default=32, metavar="N",
                    help="daemon queue bound (default 32: small enough "
                         "that the bench exercises backpressure)")
    ap.add_argument("--out", default="BENCH_service.json", metavar="PATH",
                    help="report path (default %(default)s)")
    args = ap.parse_args(argv)

    total = args.requests or (54 if args.quick else 120)
    if total < 50:
        raise SystemExit("bench_service: need >= 50 requests for a "
                         "meaningful mixed-load run")

    sock_dir = tempfile.mkdtemp(prefix="repro-bench-svc-")
    sock_path = os.path.join(sock_dir, "repro.sock")
    print(f"bench_service: starting daemon (preset {args.preset}, "
          f"queue {args.queue_depth}) ...")
    proc = start_daemon(sock_path, args.preset, args.queue_depth)

    try:
        # -- cold + mixed phase ------------------------------------------
        # Seed one envelope per workload for the verify mix, serially,
        # so every verify request has a real proof to check.
        results = {}
        seed_hist, seed_fail, _, _ = run_phase(
            sock_path, [("prove", w, SEEDS[0], None) for w in WORKLOADS],
            1, results)
        if seed_fail:
            raise SystemExit(f"bench_service: seeding failed: {seed_fail}")

        pairs = list(itertools.product(WORKLOADS, SEEDS))
        mixed, prove_i = [], 0
        for i in range(total - len(WORKLOADS)):
            if i % 3 == 2:  # 1 verify : 2 proves
                workload = WORKLOADS[i % len(WORKLOADS)]
                mixed.append(("verify", workload, SEEDS[0],
                              results[(workload, SEEDS[0])]))
            else:
                workload, seed = pairs[prove_i % len(pairs)]
                prove_i += 1
                mixed.append(("prove", workload, seed, None))
        proves = sum(1 for r in mixed if r[0] == "prove")
        print(f"bench_service: mixed phase — {len(mixed)} requests "
              f"({proves} prove / {len(mixed) - proves} verify) across "
              f"{args.concurrency} clients ...")
        hist, failures, retries, wall = run_phase(
            sock_path, mixed, args.concurrency, results)
        for kind in hist:
            hist[kind].merge(seed_hist[kind])
        done = hist["prove"].count + hist["verify"].count - len(failures)

        # -- repeat phase: every prove again, expecting cached bytes -----
        repeat_results = {}
        repeat = [("prove", w, s, None) for (w, s) in sorted(results)]
        print(f"bench_service: repeat phase — {len(repeat)} cached "
              "proves ...")
        rep_hist, rep_fail, _, rep_wall = run_phase(
            sock_path, repeat, args.concurrency, repeat_results)
        byte_identical = not rep_fail and all(
            repeat_results.get(k) == results[k] for k in results)

        with ServiceClient(sock_path) as svc:
            stats = svc.stats()
            svc.shutdown_server()
        daemon_out = ""
        try:
            daemon_out = proc.communicate(timeout=60)[0] or ""
        except subprocess.TimeoutExpired:
            proc.kill()
            raise SystemExit("bench_service: daemon refused to shut down")
        if proc.returncode != 0:
            raise SystemExit(f"bench_service: daemon exited "
                             f"{proc.returncode}:\n{daemon_out}")
    finally:
        if proc.poll() is None:
            proc.terminate()
            try:
                proc.communicate(timeout=30)
            except subprocess.TimeoutExpired:
                proc.kill()

    proof_hits = stats["proof_cache"]["hits"]
    proof_lookups = proof_hits + stats["proof_cache"]["misses"]
    all_hist = Histogram()
    all_hist.merge(hist["prove"])
    all_hist.merge(hist["verify"])
    total_requests = all_hist.count + rep_hist["prove"].count

    report = {
        "schema": "bench-service-v1",
        "quick": bool(args.quick),
        "preset": args.preset,
        "config": {
            "requests": total, "concurrency": args.concurrency,
            "queue_depth": args.queue_depth, "workloads": list(WORKLOADS),
            "seeds_per_workload": len(SEEDS),
        },
        "totals": {
            "requests": total_requests,
            "completed": done + rep_hist["prove"].count - len(rep_fail),
            "failed": len(failures) + len(rep_fail),
            "dropped_on_crash": 0 if proc.returncode == 0 else None,
            "backpressure_retries": retries,
        },
        "latency": {
            "prove": hist_summary(hist["prove"]),
            "verify": hist_summary(hist["verify"]),
            "all": hist_summary(all_hist),
        },
        "throughput_rps": round(all_hist.count / wall, 3) if wall else 0.0,
        "wall_s": round(wall, 3),
        "queue": stats["queue"],
        "pk_cache": stats["pk_cache"],
        "proof_cache": dict(stats["proof_cache"],
                            hit_rate=round(proof_hits / proof_lookups, 4)
                            if proof_lookups else 0.0),
        "repeat": {
            "requests": rep_hist["prove"].count,
            "byte_identical": byte_identical,
            "p50_s": rep_hist["prove"].quantile(0.5),
            "wall_s": round(rep_wall, 3),
        },
        "failures": [list(f) for f in failures + rep_fail][:20],
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    lat = report["latency"]["all"]
    print(f"bench_service: {total_requests} requests, "
          f"{report['totals']['failed']} failed, "
          f"{retries} backpressure retries")
    print(f"  latency p50 {lat['p50_s']:.4g}s  p99 {lat['p99_s']:.4g}s  "
          f"throughput {report['throughput_rps']:.1f} req/s")
    print(f"  queue peak {stats['queue']['peak_depth']}/"
          f"{stats['queue']['max_depth']}  proof-cache hit rate "
          f"{report['proof_cache']['hit_rate']:.0%}  repeat "
          f"byte-identical: {byte_identical}")
    print(f"wrote {args.out}")

    if failures or rep_fail:
        print("FAIL: jobs were dropped or failed", file=sys.stderr)
        return 1
    if not byte_identical:
        print("FAIL: cached repeat envelopes differ from first run",
              file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
