#!/usr/bin/env python
"""Chaos harness: deterministic runtime fault injection for the prover.

Where ``tools/soundness_harness.py`` attacks proof *bytes*, this harness
attacks the proving *machinery*: it arms one :class:`repro.fuzz.faults.
FaultPlan` per scenario — a worker SIGKILLed mid-chunk, a dispatch that
hangs, a shared-memory segment unlinked under a reader, a poisoned
broadcast blob, a generic in-task exception, a spent deadline — builds a
fresh supervised pool inside the armed scope, runs a real proving
workload through it, and asserts the fault contract on every scenario:

* the run **completes with byte-identical proofs** (supervisor retried,
  restarted, or degraded to the serial path), or
* it raises a **typed** :class:`repro.errors.ReproError`, and
* either way **zero** ``repro*`` segments are leaked in ``/dev/shm``, and
* every fired fault left at least one matching event in the
  :data:`repro.obs.FLIGHT` flight recorder (kill -> ``worker_restart``,
  stall -> ``dispatch_stall``, spent deadline -> ``timeout``, ...), so
  no recovery is invisible to an operator reading ``repro report``.

Anything else — wrong bytes, an untyped exception, a leaked segment, or
a plan that never fired — fails the scenario and the process exits
nonzero.  A machine-readable injection matrix (scenario x outcome x
recovery latency) is written to ``BENCH_faults.json``.

Usage::

    PYTHONPATH=src python tools/chaos_harness.py --quick   # CI smoke
    PYTHONPATH=src python tools/chaos_harness.py           # full matrix
                                                           # + 2^16 overhead
"""

from __future__ import annotations

import argparse
import json
import os
import sys
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro.errors import ProverTimeoutError, ReproError
from repro.fuzz import faults
from repro.obs.events import FLIGHT
from repro.parallel import FaultPolicy, ProverPool
from repro.snark import TEST, prove, prove_many, setup
from repro.workloads import synthetic_r1cs

#: Everything below is deterministic: fixed workload seed, fixed zk-mask
#: seeds, fixed fault injection points.  Two runs produce the same bytes.
WORKLOAD_SEED = 9
PROVE_RNG_SEED = 7
BATCH_BASE_SEED = 42
BATCH_JOBS = 3

#: Supervision policy for chaos pools: fast backoff so the matrix runs in
#: seconds, and a short stall watchdog so the stall scenario converges.
CHAOS_POLICY = FaultPolicy(max_retries=2, backoff_base_s=0.01,
                           backoff_cap_s=0.2, dispatch_timeout_s=1.5)

#: How long an injected stall sleeps — comfortably past the watchdog.
STALL_S = 6.0

#: Flight-recorder visibility contract: every injected fault must leave
#: at least one event of a matching kind in the parent's ring (first
#: entry = the canonical kind; the rest are acceptable recovery paths,
#: e.g. a kill whose retries exhaust ends in ``degradation`` rather than
#: ``worker_restart``).  A recovery the recorder cannot see is an outage
#: an operator cannot see, so invisibility fails the scenario even when
#: the proof bytes came out right.
FAULT_VISIBILITY = {
    "worker_kill": ("worker_restart", "retry", "degradation"),
    "stall": ("dispatch_stall", "worker_restart", "degradation"),
    "shm_unlink": ("degradation", "task_error", "retry", "worker_restart"),
    "poison_pickle": ("degradation", "task_error", "retry"),
    "error": ("task_error", "retry", "degradation"),
    "deadline": ("timeout",),
}


@dataclass
class Scenario:
    """One cell of the injection matrix."""

    name: str
    op: str                       # "prove" | "prove_many" | "deadline"
    kind: Optional[str] = None    # fault kind, None = no plan (control)
    site: str = ""
    workers: int = 2
    quick: bool = False           # include in --quick smoke runs
    expect_fired: bool = True
    extra: Dict[str, float] = field(default_factory=dict)


SCENARIOS: List[Scenario] = [
    # Controls: no fault, must complete identically (and at every worker
    # count the determinism contract names).
    Scenario("control_workers2", "prove", None, quick=True,
             expect_fired=False),
    Scenario("control_workers4", "prove", None, workers=4,
             expect_fired=False),
    # Worker death (uncatchable SIGKILL) at each kernel family.
    Scenario("worker_kill_encode", "prove", "worker_kill", "encode",
             quick=True),
    Scenario("worker_kill_hash", "prove", "worker_kill", "hash_columns"),
    Scenario("worker_kill_job", "prove_many", "worker_kill", "prove_job",
             quick=True),
    # Hung dispatch: the watchdog must detect and re-drive.
    Scenario("stall_encode", "prove", "stall", "encode", quick=True,
             extra={"stall_s": STALL_S}),
    Scenario("stall_job", "prove_many", "stall", "prove_job",
             extra={"stall_s": STALL_S}),
    # Torn shared memory: segment unlinked from under a worker.
    Scenario("shm_unlink_encode", "prove", "shm_unlink", "encode",
             quick=True),
    Scenario("shm_unlink_hash", "prove", "shm_unlink", "hash_columns"),
    # Corrupted broadcast blob (the pickled proving key).
    Scenario("poison_broadcast", "prove_many", "poison_pickle", "broadcast",
             quick=True),
    # Generic in-task exception.
    Scenario("error_encode", "prove", "error", "encode"),
    Scenario("error_job", "prove_many", "error", "prove_job", quick=True),
    # Spent deadline: must raise ProverTimeoutError, never degrade.
    Scenario("deadline_expiry", "deadline", None, quick=True,
             expect_fired=False),
]


def repro_segments() -> List[str]:
    try:
        return sorted(n for n in os.listdir("/dev/shm")
                      if n.startswith("repro"))
    except OSError:
        return []


class Workload:
    """The fixed statement every scenario proves, plus serial baselines."""

    def __init__(self, log_size: int = 10):
        self.r1cs, self.public, self.witness = synthetic_r1cs(
            log_size=log_size, seed=WORKLOAD_SEED)
        self.pk, self.vk = setup(self.r1cs, TEST)
        t0 = time.perf_counter()
        self.prove_baseline = prove(
            self.pk, self.public, self.witness,
            rng=np.random.default_rng(PROVE_RNG_SEED)).to_bytes()
        self.prove_baseline_s = time.perf_counter() - t0
        jobs = [(self.public, self.witness)] * BATCH_JOBS
        t0 = time.perf_counter()
        self.batch_baseline = [
            b.to_bytes() for b in prove_many(self.pk, jobs, workers=0,
                                             base_seed=BATCH_BASE_SEED)]
        self.batch_baseline_s = time.perf_counter() - t0

    def run_op(self, op: str, pool: Optional[ProverPool]) -> List[bytes]:
        if op == "prove":
            return [prove(self.pk, self.public, self.witness,
                          rng=np.random.default_rng(PROVE_RNG_SEED),
                          pool=pool).to_bytes()]
        if op == "prove_many":
            jobs = [(self.public, self.witness)] * BATCH_JOBS
            return [b.to_bytes()
                    for b in prove_many(self.pk, jobs, pool=pool,
                                        base_seed=BATCH_BASE_SEED)]
        if op == "deadline":
            prove(self.pk, self.public, self.witness,
                  rng=np.random.default_rng(PROVE_RNG_SEED),
                  pool=pool, timeout_s=1e-4)
            raise AssertionError("a 0.1 ms deadline cannot be met")
        raise ValueError(f"unknown op {op!r}")

    def expected(self, op: str) -> List[bytes]:
        return ([self.prove_baseline] if op == "prove"
                else self.batch_baseline)

    def baseline_s(self, op: str) -> float:
        return (self.prove_baseline_s if op == "prove"
                else self.batch_baseline_s)


def run_scenario(sc: Scenario, wl: Workload) -> dict:
    """Execute one scenario and classify its outcome."""
    before = set(repro_segments())
    seq0 = FLIGHT.seq
    plan = None
    if sc.kind is not None:
        plan = faults.FaultPlan(kind=sc.kind, site=sc.site,
                                token=f"chaos_{sc.name}", **sc.extra)
        faults.install(plan)
    outcome, error = "completed_identical", None
    t0 = time.perf_counter()
    try:
        # The pool is built INSIDE the armed scope so forked workers
        # inherit the plan; auto_chunk=False forces real fan-out even on
        # a single-core CI box.
        pool = ProverPool(workers=sc.workers, auto_chunk=False,
                          fault_policy=CHAOS_POLICY)
        try:
            blobs = wl.run_op(sc.op, pool)
            if blobs != wl.expected(sc.op):
                outcome = "completed_WRONG_BYTES"
        finally:
            pool.close()
    except ProverTimeoutError as exc:
        outcome, error = "timeout_error", f"{type(exc).__name__}: {exc}"
    except ReproError as exc:
        outcome, error = "typed_error", f"{type(exc).__name__}: {exc}"
    except Exception as exc:  # noqa: BLE001 - the harness's whole point
        outcome, error = "UNTYPED_CRASH", f"{type(exc).__name__}: {exc}"
    elapsed = time.perf_counter() - t0
    fired = plan is not None and os.path.exists(plan.claim_path)
    if plan is not None:
        faults.clear()
    leaked = sorted(set(repro_segments()) - before)

    if sc.op == "deadline":
        ok = outcome == "timeout_error"
    else:
        ok = outcome in ("completed_identical", "typed_error")
    if sc.expect_fired and not fired:
        ok = False
        outcome += "+PLAN_NEVER_FIRED"
    if leaked:
        ok = False

    # Fault-visibility contract: the flight recorder must have at least
    # one matching event for every injected (and fired) fault.
    flight = FLIGHT.fault_deltas(seq0)
    visible_kinds = FAULT_VISIBILITY.get(
        sc.kind or ("deadline" if sc.op == "deadline" else ""))
    if visible_kinds is not None and (fired or sc.op == "deadline"):
        if not any(flight.get(k) for k in visible_kinds):
            ok = False
            outcome += "+FAULT_INVISIBLE"
    return {
        "scenario": sc.name,
        "kind": sc.kind or ("deadline" if sc.op == "deadline" else "none"),
        "site": sc.site,
        "op": sc.op,
        "workers": sc.workers,
        "outcome": outcome,
        "error": error,
        "fired": fired,
        "flight_events": flight,
        "leaked_segments": leaked,
        "elapsed_s": round(elapsed, 4),
        "recovery_latency_s": round(max(0.0, elapsed - wl.baseline_s(sc.op)),
                                    4),
        "ok": ok,
    }


def worker_count_sweep(wl: Workload) -> dict:
    """Determinism contract: identical bytes at workers {0, 1, 2, 4}."""
    byts = {}
    for workers in (0, 1, 2, 4):
        pool = (ProverPool(workers=workers, auto_chunk=False)
                if workers > 1 else None)
        try:
            byts[workers] = wl.run_op("prove", pool)[0]
        finally:
            if pool is not None:
                pool.close()
    identical = len(set(byts.values())) == 1
    return {"worker_counts": sorted(byts), "identical": identical,
            "matches_serial_baseline": byts[0] == wl.prove_baseline}


def recovery_overhead(log_size: int = 16) -> dict:
    """Single worker kill at 2^``log_size``: recovery must cost < 2x the
    no-fault parallel prove (the degraded serial rerun dominates)."""
    wl = Workload(log_size=log_size)
    pool = ProverPool(workers=2, auto_chunk=False, fault_policy=CHAOS_POLICY)
    try:
        t0 = time.perf_counter()
        nofault = wl.run_op("prove", pool)[0]
        nofault_s = time.perf_counter() - t0
    finally:
        pool.close()
    plan = faults.FaultPlan(kind="worker_kill", site="encode",
                            token="chaos_overhead")
    with faults.injected(plan):
        pool = ProverPool(workers=2, auto_chunk=False,
                          fault_policy=CHAOS_POLICY)
        try:
            t0 = time.perf_counter()
            faulted = wl.run_op("prove", pool)[0]
            faulted_s = time.perf_counter() - t0
        finally:
            fired = os.path.exists(plan.claim_path)
            pool.close()
    ratio = faulted_s / nofault_s if nofault_s > 0 else float("inf")
    return {
        "log_size": log_size,
        "nofault_prove_s": round(nofault_s, 3),
        "faulted_prove_s": round(faulted_s, 3),
        "overhead_ratio": round(ratio, 3),
        "bytes_identical": faulted == nofault == wl.prove_baseline,
        "fired": fired,
        "ok": fired and ratio < 2.0 and faulted == nofault,
    }


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--quick", action="store_true",
                    help="run the CI smoke subset only (skips the 2^16 "
                         "recovery-overhead measurement)")
    ap.add_argument("--out", default="BENCH_faults.json",
                    help="report path (default BENCH_faults.json)")
    args = ap.parse_args(argv)

    scenarios = [s for s in SCENARIOS if s.quick] if args.quick else SCENARIOS
    t_start = time.perf_counter()
    print("building workload and serial baselines (2^10, TEST preset) ...")
    wl = Workload()
    print(f"  prove baseline {wl.prove_baseline_s:.2f}s | "
          f"batch baseline ({BATCH_JOBS} jobs) {wl.batch_baseline_s:.2f}s")

    results = []
    width = max(len(s.name) for s in scenarios)
    for sc in scenarios:
        res = run_scenario(sc, wl)
        results.append(res)
        status = "ok  " if res["ok"] else "FAIL"
        flight = ",".join(f"{k}:{v}" for k, v in
                          sorted(res["flight_events"].items())) or "-"
        print(f"  [{status}] {sc.name:<{width}}  {res['outcome']:<22} "
              f"fired={str(res['fired']):<5} "
              f"recovery={res['recovery_latency_s']:.2f}s "
              f"flight={flight}"
              + (f"  leaked={res['leaked_segments']}"
                 if res["leaked_segments"] else ""))

    print("worker-count determinism sweep {0, 1, 2, 4} ...")
    sweep = worker_count_sweep(wl)
    print(f"  identical={sweep['identical']} "
          f"matches_serial={sweep['matches_serial_baseline']}")

    overhead = None
    if not args.quick:
        print("recovery overhead: single worker kill at 2^16 ...")
        overhead = recovery_overhead()
        print(f"  no-fault {overhead['nofault_prove_s']:.2f}s | "
              f"faulted {overhead['faulted_prove_s']:.2f}s | "
              f"ratio {overhead['overhead_ratio']:.2f}x "
              f"(budget < 2.0x) | identical={overhead['bytes_identical']}")

    failures = [r["scenario"] for r in results if not r["ok"]]
    ok = (not failures and sweep["identical"]
          and sweep["matches_serial_baseline"]
          and (overhead is None or overhead["ok"]))
    report = {
        "schema": "repro/faults",
        "schema_version": 1,
        "quick": args.quick,
        "workload": f"synthetic_r1cs(log_size=10, seed={WORKLOAD_SEED})",
        "policy": {
            "max_retries": CHAOS_POLICY.max_retries,
            "backoff_base_s": CHAOS_POLICY.backoff_base_s,
            "backoff_cap_s": CHAOS_POLICY.backoff_cap_s,
            "dispatch_timeout_s": CHAOS_POLICY.dispatch_timeout_s,
        },
        "scenarios": results,
        "worker_count_sweep": sweep,
        "recovery_overhead": overhead,
        "elapsed_seconds": round(time.perf_counter() - t_start, 2),
        "ok": ok,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")
    print(f"\n{len(results)} scenarios in {report['elapsed_seconds']:.1f}s "
          f"(report: {args.out})")
    if not ok:
        bad = failures or ["worker_count_sweep" if not sweep["identical"]
                           else "recovery_overhead"]
        print(f"FAIL: {', '.join(bad)}")
        return 1
    print("OK: every injected fault ended in byte-identical proofs or a "
          "typed error, with zero leaked segments and a matching "
          "flight-recorder event")
    return 0


if __name__ == "__main__":
    sys.exit(main())
