"""Refit the NoCap performance-model calibration constants.

Reproduces the one-time calibration recorded in
``repro/nocap/constants.py`` (see DESIGN.md and EXPERIMENTS.md): the
per-task-family scale factors are chosen so that, at the Table I
reference point (2^24 constraints, 3 sumcheck repetitions), the model
matches the paper's measured

* total proving time (151.3 ms, Table IV),
* per-task runtime split (Fig. 6a),
* sumcheck memory traffic (55% of Fig. 6b's total), and
* the recomputation optimization's 1.1x gain (Sec. VIII-C).

Run:  python tools/fit_constants.py
It prints the fitted values; compare them against constants.py (they are
baked in there so the library needs no fitting at import time).  Small
differences from the baked values are fixed points of the damped
iteration, not target disagreements — either set satisfies the
reproduction tolerances asserted by the test-suite and benchmarks.
"""

from __future__ import annotations

import importlib
import sys

import repro.nocap.constants as C

#: Snapshot of the baked-in values before fitting mutates the module.
BAKED = {key: getattr(C, key) for key in (
    "SUMCHECK_COMPUTE_SCALE", "SUMCHECK_TRAFFIC_SCALE", "RS_ENCODE_SCALE",
    "MERKLE_SCALE", "POLYARITH_SCALE", "SPMV_SCALE", "SPARK_COMPUTE_FACTOR")}


def run_reference(recompute=None):
    import repro.nocap.simulator as S
    import repro.nocap.tasks as T

    importlib.reload(T)
    importlib.reload(S)
    from repro.nocap.config import DEFAULT_CONFIG

    return S.NoCapSimulator(DEFAULT_CONFIG).simulate(1 << 24,
                                                     recompute=recompute)


def fit(iterations: int = 30) -> dict:
    target_total = C.REFERENCE_TOTAL_S
    fractions = C.REFERENCE_TIME_FRACTIONS
    time_targets = {fam: fractions[fam] * target_total
                    for fam in ("sumcheck", "polyarith", "rs_encode",
                                "merkle", "spmv")}
    # Total traffic implied by poly arith being memory-bound at 25%.
    total_bytes = time_targets["polyarith"] * 1e12 / 0.25
    sumcheck_bytes_target = 0.55 * total_bytes
    recompute_gain_target = 1.10

    scales = dict(SUMCHECK_COMPUTE_SCALE=100.0, SUMCHECK_TRAFFIC_SCALE=1.0,
                  RS_ENCODE_SCALE=1.0, MERKLE_SCALE=1.0,
                  POLYARITH_SCALE=1.0, SPMV_SCALE=1.0,
                  SPARK_COMPUTE_FACTOR=0.1)
    best = None
    for _ in range(iterations):
        for key, value in scales.items():
            setattr(C, key, value)
        on = run_reference()
        off = run_reference(recompute=False)
        tf, bf = on.time_by_family, on.traffic_by_family
        gain = off.total_seconds / on.total_seconds

        err = (abs(tf["sumcheck"] / time_targets["sumcheck"] - 1)
               + abs(bf["sumcheck"] / sumcheck_bytes_target - 1)
               + abs(gain / recompute_gain_target - 1))
        if best is None or err < best[0]:
            best = (err, dict(scales))

        scales["SUMCHECK_COMPUTE_SCALE"] *= (
            time_targets["sumcheck"] / tf["sumcheck"]) ** 0.6
        scales["SUMCHECK_TRAFFIC_SCALE"] *= (
            sumcheck_bytes_target / bf["sumcheck"]) ** 0.6
        scales["SPARK_COMPUTE_FACTOR"] = min(1.0, max(
            0.02, scales["SPARK_COMPUTE_FACTOR"]
            * (gain / recompute_gain_target) ** 0.4))
        for fam, key in (("rs_encode", "RS_ENCODE_SCALE"),
                         ("merkle", "MERKLE_SCALE"),
                         ("polyarith", "POLYARITH_SCALE"),
                         ("spmv", "SPMV_SCALE")):
            scales[key] *= time_targets[fam] / tf[fam]
    return best[1]


def main() -> int:
    fitted = fit()
    print("fitted calibration constants (bake into repro/nocap/constants.py):")
    for key, value in fitted.items():
        print(f"  {key:<24} = {value:10.4f}   (baked: {BAKED[key]:.4f})")
    # Restore the baked values for any later use of this process.
    importlib.reload(C)
    run_reference()
    return 0


if __name__ == "__main__":
    sys.exit(main())
