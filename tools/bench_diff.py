"""Perf-regression gate: diff a fresh bench run against a committed baseline.

Compares a candidate ``BENCH_prover.json`` (and optionally
``BENCH_faults.json``) against the baselines committed in the repo, with
per-metric relative tolerances, and exits non-zero when any metric
regressed beyond its tolerance — turning the bench trajectory from a
recorded artifact into an enforced contract.  Improvements always pass:
a regression is ``current > baseline * (1 + tolerance)`` for
cost metrics (time, bytes), evaluated per bench row at matching
``log_size``.

Two comparison modes:

* **absolute** (default): raw values compared row by row.  Right when
  the candidate ran on the same machine as the baseline (a developer
  re-running the bench before committing).
* **--calibrate**: wall-clock metrics are first normalized by the
  median ``current/baseline`` prove_s ratio across all shared rows, so
  a uniformly faster or slower machine cancels out and only *shape*
  anomalies (one size regressing while the rest track) trip the gate.
  Machine-independent metrics — ``proof_size_bytes`` (exact) and the
  ``noop_overhead_frac`` ceiling — are enforced unscaled in both modes.
  This is what CI uses: its runners share nothing with the machine that
  produced the committed baseline.

Exit codes: 0 clean, 1 regression detected, 2 usage/IO error.

Run:
    PYTHONPATH=src python tools/bench_prover.py --json /tmp/bench.json \
        --min-log 10 --max-log 12 --workers 0
    python tools/bench_diff.py --current /tmp/bench.json \
        [--baseline BENCH_prover.json] [--calibrate] [--report diff.json]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

REPO_ROOT = Path(__file__).resolve().parent.parent

#: Relative tolerance per metric: a row regresses when
#: ``current > baseline * (1 + tol)``.  Wall-clock tolerances are wide
#: enough for best-of-3 noise on a quiet machine but catch the 1.5-2x
#: cliffs an accidental serial fallback or dead cache causes; byte
#: metrics are tight because they are deterministic.
TOLERANCES = {
    "prove_s": 0.25,
    "verify_s": 0.35,
    "proof_size_bytes": 0.0,      # proof bytes are deterministic: exact
    "peak_rss_bytes": 0.30,
    "recovery_overhead": 0.50,    # BENCH_faults kill-recovery ratio
    "service_p99_s": 1.00,        # daemon p99 latency: CI runners queue
    "service_throughput_rps": 0.50,   # floor: current < base/(1+tol) fails
}

#: Proof-cache hit rate may drop at most this much (absolute) below the
#: baseline — the request mix is deterministic, so a real drop means the
#: content addressing broke, not that the machine was slow.
MAX_HIT_RATE_DROP = 0.05

#: ``noop_overhead_frac`` is checked against this *absolute* ceiling
#: (mirroring the in-bench assertion), not against the baseline value —
#: the projection is already a ratio of two measurements on one machine.
MAX_NOOP_OVERHEAD_FRAC = 0.02


def load(path: Path) -> dict:
    try:
        return json.loads(path.read_text())
    except (OSError, ValueError) as exc:
        raise SystemExit(f"bench_diff: cannot load {path}: {exc}")


def rows_by_size(payload: dict) -> dict:
    return {row["log_size"]: row for row in payload.get("results", [])}


def median(values):
    ordered = sorted(values)
    return ordered[len(ordered) // 2] if ordered else 1.0


def compare_prover(baseline: dict, current: dict, calibrate: bool) -> list:
    """Compare two BENCH_prover payloads; returns a list of finding dicts
    (``regression: True`` entries are what fail the gate)."""
    findings = []
    base_rows = rows_by_size(baseline)
    cur_rows = rows_by_size(current)
    shared = sorted(set(base_rows) & set(cur_rows))
    if not shared:
        findings.append({
            "metric": "results", "regression": True,
            "detail": "no overlapping log_size rows between baseline "
                      "and current run"})
        return findings

    # Calibration factor: how fast this machine is relative to the one
    # that produced the baseline, estimated by the median per-size
    # prove_s ratio.  Dividing current wall times by it leaves only
    # per-size shape anomalies.
    scale = 1.0
    if calibrate:
        scale = median([cur_rows[s]["prove_s"] / base_rows[s]["prove_s"]
                        for s in shared
                        if base_rows[s].get("prove_s")])
        scale = max(scale, 1e-9)
        findings.append({
            "metric": "calibration", "regression": False,
            "detail": f"machine speed factor {scale:.3f}x baseline "
                      f"(median prove_s ratio over {len(shared)} sizes)"})

    wall_metrics = ("prove_s", "verify_s")
    for size in shared:
        base, cur = base_rows[size], cur_rows[size]
        for metric, tol in TOLERANCES.items():
            if metric not in base or metric not in cur:
                continue
            base_v, cur_v = float(base[metric]), float(cur[metric])
            eff_cur = cur_v / scale if metric in wall_metrics else cur_v
            limit = base_v * (1.0 + tol)
            regressed = eff_cur > limit and base_v > 0
            findings.append({
                "metric": metric, "log_size": size,
                "baseline": base_v, "current": cur_v,
                "effective_current": round(eff_cur, 6),
                "limit": round(limit, 6), "tolerance": tol,
                "regression": bool(regressed),
                "detail": (f"2^{size} {metric}: {eff_cur:.6g} vs limit "
                           f"{limit:.6g} (baseline {base_v:.6g} +{tol:.0%})"
                           if regressed else ""),
            })
        ovh = (cur.get("instrumentation") or {}).get("noop_overhead_frac")
        if ovh is not None:
            findings.append({
                "metric": "noop_overhead_frac", "log_size": size,
                "current": ovh, "limit": MAX_NOOP_OVERHEAD_FRAC,
                "regression": bool(ovh >= MAX_NOOP_OVERHEAD_FRAC),
                "detail": (f"2^{size} disabled-instrumentation overhead "
                           f"{ovh:.2%} >= {MAX_NOOP_OVERHEAD_FRAC:.0%} "
                           "ceiling" if ovh >= MAX_NOOP_OVERHEAD_FRAC
                           else ""),
            })
    return findings


def compare_faults(baseline: dict, current: dict) -> list:
    """Compare BENCH_faults payloads: every scenario present in the
    baseline must still pass, and the kill-recovery overhead must not
    blow past its tolerance."""
    findings = []
    base_outcomes = {s["scenario"]: s for s in baseline.get("scenarios", [])}
    cur_outcomes = {s["scenario"]: s for s in current.get("scenarios", [])}
    for name, base_sc in sorted(base_outcomes.items()):
        cur_sc = cur_outcomes.get(name)
        if cur_sc is None:
            continue  # quick runs exercise a subset; absence is not failure
        ok = bool(cur_sc.get("ok", cur_sc.get("passed", False)))
        findings.append({
            "metric": "scenario", "scenario": name, "regression": not ok,
            "detail": "" if ok else f"fault scenario {name!r} now fails",
        })
    base_rec = (baseline.get("recovery_overhead") or {}).get("overhead_ratio")
    cur_rec = (current.get("recovery_overhead") or {}).get("overhead_ratio")
    if base_rec and cur_rec:
        tol = TOLERANCES["recovery_overhead"]
        limit = float(base_rec) * (1.0 + tol)
        findings.append({
            "metric": "recovery_overhead",
            "baseline": base_rec, "current": cur_rec,
            "limit": round(limit, 4), "regression": bool(cur_rec > limit),
            "detail": (f"kill-recovery overhead {cur_rec:.2f}x vs limit "
                       f"{limit:.2f}x" if cur_rec > limit else ""),
        })
    return findings


def compare_service(baseline: dict, current: dict) -> list:
    """Compare BENCH_service payloads (``tools/bench_service.py``).

    Two classes of check: **invariants** that hold on any machine —
    zero dropped jobs, byte-identical cached repeats, the >= 50-request
    floor, the proof-cache hit rate — and **wall-clock** metrics (p99
    latency, throughput) gated with wide tolerances because CI runners
    share nothing with the baseline machine."""
    findings = []

    def check(metric, regressed, detail):
        findings.append({"metric": metric, "regression": bool(regressed),
                         "detail": detail if regressed else ""})

    totals = current.get("totals", {})
    check("service_dropped", totals.get("dropped_on_crash") != 0,
          f"dropped_on_crash = {totals.get('dropped_on_crash')!r} "
          "(must be exactly 0)")
    check("service_failed", totals.get("failed", 1) != 0,
          f"{totals.get('failed')} service jobs failed")
    check("service_request_floor", totals.get("requests", 0) < 50,
          f"only {totals.get('requests')} requests; the gate needs a "
          ">= 50-request mixed run")
    repeat = current.get("repeat", {})
    check("service_repeat_identical",
          repeat.get("byte_identical") is not True,
          "cached repeat envelopes were not byte-identical")

    base_rate = (baseline.get("proof_cache") or {}).get("hit_rate")
    cur_rate = (current.get("proof_cache") or {}).get("hit_rate")
    if base_rate is not None and cur_rate is not None:
        floor = float(base_rate) - MAX_HIT_RATE_DROP
        check("service_hit_rate", float(cur_rate) < floor,
              f"proof-cache hit rate {cur_rate:.0%} fell below "
              f"{floor:.0%} (baseline {float(base_rate):.0%})")

    base_p99 = ((baseline.get("latency") or {}).get("all") or {}).get("p99_s")
    cur_p99 = ((current.get("latency") or {}).get("all") or {}).get("p99_s")
    if base_p99 and cur_p99:
        tol = TOLERANCES["service_p99_s"]
        limit = float(base_p99) * (1.0 + tol)
        findings.append({
            "metric": "service_p99_s", "baseline": base_p99,
            "current": cur_p99, "limit": round(limit, 6), "tolerance": tol,
            "regression": bool(float(cur_p99) > limit),
            "detail": (f"service p99 latency {cur_p99:.4g}s vs limit "
                       f"{limit:.4g}s" if float(cur_p99) > limit else ""),
        })
    base_rps = baseline.get("throughput_rps")
    cur_rps = current.get("throughput_rps")
    if base_rps and cur_rps:
        tol = TOLERANCES["service_throughput_rps"]
        floor = float(base_rps) / (1.0 + tol)
        findings.append({
            "metric": "service_throughput_rps", "baseline": base_rps,
            "current": cur_rps, "limit": round(floor, 3), "tolerance": tol,
            "regression": bool(float(cur_rps) < floor),
            "detail": (f"service throughput {cur_rps:.1f} req/s fell "
                       f"below floor {floor:.1f}"
                       if float(cur_rps) < floor else ""),
        })
    return findings


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--current", metavar="PATH",
                    help="fresh BENCH_prover.json to gate")
    ap.add_argument("--baseline", metavar="PATH",
                    default=str(REPO_ROOT / "BENCH_prover.json"),
                    help="committed baseline (default: %(default)s)")
    ap.add_argument("--faults-current", metavar="PATH",
                    help="fresh BENCH_faults.json (optional)")
    ap.add_argument("--faults-baseline", metavar="PATH",
                    default=str(REPO_ROOT / "BENCH_faults.json"),
                    help="committed faults baseline (default: %(default)s)")
    ap.add_argument("--service-current", metavar="PATH",
                    help="fresh BENCH_service.json (optional)")
    ap.add_argument("--service-baseline", metavar="PATH",
                    default=str(REPO_ROOT / "BENCH_service.json"),
                    help="committed service baseline (default: %(default)s)")
    ap.add_argument("--calibrate", action="store_true",
                    help="normalize wall-clock metrics by the median "
                         "current/baseline prove_s ratio (for CI runners "
                         "that differ from the baseline machine)")
    ap.add_argument("--report", metavar="PATH",
                    help="write the full finding list as JSON")
    args = ap.parse_args(argv)

    if not (args.current or args.faults_current or args.service_current):
        ap.error("nothing to gate: pass --current, --faults-current, "
                 "and/or --service-current")

    findings = []
    if args.current:
        findings += compare_prover(load(Path(args.baseline)),
                                   load(Path(args.current)), args.calibrate)
    if args.faults_current:
        findings += compare_faults(load(Path(args.faults_baseline)),
                                   load(Path(args.faults_current)))
    if args.service_current:
        findings += compare_service(load(Path(args.service_baseline)),
                                    load(Path(args.service_current)))

    regressions = [f for f in findings if f["regression"]]
    checked = [f for f in findings if f.get("metric") != "calibration"]
    for f in findings:
        if f["regression"]:
            print(f"REGRESSION  {f['detail']}")
        elif f.get("detail"):
            print(f"note        {f['detail']}")
    print(f"bench_diff: {len(checked)} checks, "
          f"{len(regressions)} regression(s)"
          f"{' [calibrated]' if args.calibrate else ''}")

    if args.report:
        Path(args.report).write_text(json.dumps({
            "baseline": str(args.baseline) if args.current else None,
            "current": str(args.current) if args.current else None,
            "service_baseline": (str(args.service_baseline)
                                 if args.service_current else None),
            "service_current": (str(args.service_current)
                                if args.service_current else None),
            "calibrate": args.calibrate,
            "tolerances": TOLERANCES,
            "max_noop_overhead_frac": MAX_NOOP_OVERHEAD_FRAC,
            "regressions": len(regressions),
            "findings": findings,
        }, indent=2) + "\n")
        print(f"wrote {args.report}")
    return 1 if regressions else 0


if __name__ == "__main__":
    sys.exit(main())
