#!/usr/bin/env python
"""Soundness fault-injection harness.

Generates valid proofs for several small circuits, then attacks them with
every structured mutator class in :mod:`repro.fuzz.mutate` plus N seeded
random byte mutations, and asserts the trichotomy on every mutant:

* rejected at parse time with a typed :class:`repro.errors.ReproError`, or
* rejected by the verifier (``verify -> False``), or
* NOTHING ELSE: no other exception may escape, and no mutant may verify.

A machine-readable report is written to ``BENCH_soundness.json``.  Exit
status is nonzero if any mutant was accepted or crashed untyped — CI runs
this with small parameters on every push.

Usage::

    PYTHONPATH=src python tools/soundness_harness.py \
        [--seed 0] [--random-mutants 150] [--out BENCH_soundness.json]
"""

from __future__ import annotations

import argparse
import json
import random
import sys
import time
from pathlib import Path

import numpy as np

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

from repro.errors import ReproError
from repro.fuzz.mutate import (
    Mutant,
    random_mutants,
    splice_mutants,
    structured_mutants,
)
from repro.r1cs import Circuit
from repro.snark import (
    TEST,
    ProofBundle,
    proof_from_bytes,
    proof_to_bytes,
    prove,
    setup,
    verify,
)


# ---------------------------------------------------------------------------
# Target circuits: three distinct statements, all tiny (TEST preset)
# ---------------------------------------------------------------------------

def circuit_cubic() -> Circuit:
    """x^3 + x + 5 == 35 (the classic toy statement)."""
    c = Circuit()
    o = c.public(35)
    x = c.witness(3)
    c.assert_equal(c.mul(c.mul(x, x), x) + x + 5, o)
    return c


def circuit_linear() -> Circuit:
    """Multi-public linear system: 2a + 3b == out1, a - b == out2."""
    c = Circuit()
    o1 = c.public(26)
    o2 = c.public(3)
    a = c.witness(7)
    b = c.witness(4)
    c.assert_equal(a + a + b + b + b, o1)
    c.assert_equal(a - b, o2)
    return c


def circuit_mulchain() -> Circuit:
    """A chain of multiplications: prod(2..6) == 720."""
    c = Circuit()
    o = c.public(720)
    acc = c.witness(2)
    for v in (3, 4, 5, 6):
        acc = c.mul(acc, c.witness(v))
    c.assert_equal(acc, o)
    return c


CIRCUITS = {
    "cubic": circuit_cubic,
    "linear": circuit_linear,
    "mulchain": circuit_mulchain,
}


# ---------------------------------------------------------------------------
# Classification
# ---------------------------------------------------------------------------

def classify(vk, public, mutant: Mutant, tally: dict,
             failures: list) -> None:
    """Run one mutant through parse + verify, enforcing the trichotomy."""
    bucket = tally.setdefault(mutant.mutator, {
        "parse_rejected": 0, "verify_rejected": 0,
        "accepted": 0, "crashed": 0})
    try:
        proof = proof_from_bytes(mutant.data)
    except ReproError:
        bucket["parse_rejected"] += 1
        return
    except Exception as exc:  # noqa: BLE001 -- the harness's whole point
        bucket["crashed"] += 1
        failures.append({"mutator": mutant.mutator, "stage": "parse",
                         "exception": type(exc).__name__, "message": str(exc)})
        return
    try:
        ok = verify(vk, ProofBundle(proof=proof, public=public))
    except Exception as exc:  # noqa: BLE001
        bucket["crashed"] += 1
        failures.append({"mutator": mutant.mutator, "stage": "verify",
                         "exception": type(exc).__name__, "message": str(exc)})
        return
    if ok:
        bucket["accepted"] += 1
        failures.append({"mutator": mutant.mutator, "stage": "verify",
                         "exception": None,
                         "message": "mutant proof ACCEPTED"})
    else:
        bucket["verify_rejected"] += 1


def garbage_corpus(rng: random.Random) -> list:
    """Edge-case inputs no honest serializer would ever emit."""
    out = [
        Mutant("garbage", b""),
        Mutant("garbage", b"NCAP"),
        Mutant("garbage", b"NCAP\x02"),
        Mutant("garbage", b"\x00" * 57),
        Mutant("garbage", bytes(range(256))),
    ]
    for n in (1, 13, 64, 257, 4096):
        out.append(Mutant("garbage", rng.randbytes(n)))
    return out


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--seed", type=int, default=0,
                    help="PRNG seed for mutation choices (default 0)")
    ap.add_argument("--random-mutants", type=int, default=150,
                    help="random byte mutations per circuit (default 150)")
    ap.add_argument("--out", default="BENCH_soundness.json",
                    help="report path (default BENCH_soundness.json)")
    args = ap.parse_args(argv)

    rng = random.Random(args.seed)
    t0 = time.perf_counter()

    print(f"building {len(CIRCUITS)} circuits and baseline proofs ...")
    targets = {}
    for idx, (name, build) in enumerate(CIRCUITS.items()):
        # Seed the zk-mask generator from --seed too: the recorded seed
        # then reproduces the *entire* run — baseline proof bytes
        # included — not just the mutation choices.
        r1cs, public, witness = build().compile()
        pk, vk = setup(r1cs, TEST)
        bundle = prove(pk, public, witness,
                       rng=np.random.default_rng(
                           np.random.SeedSequence([args.seed, idx])))
        data = proof_to_bytes(bundle.proof)
        # Baseline sanity: the honest proof must verify, including after a
        # serialization round trip, or mutant rejections mean nothing.
        if not verify(vk, bundle):
            print(f"FATAL: honest proof for {name!r} failed verification")
            return 2
        if not verify(vk, ProofBundle(proof=proof_from_bytes(data),
                                      public=bundle.public)):
            print(f"FATAL: round-tripped proof for {name!r} failed")
            return 2
        targets[name] = (vk, bundle.public, data)
        print(f"  {name}: {len(data)} bytes")

    tally: dict = {}
    failures: list = []
    total = 0

    for name, (vk, public, data) in targets.items():
        mutants = structured_mutants(data, rng)
        mutants += random_mutants(data, rng, args.random_mutants)
        mutants += garbage_corpus(rng)
        for m in mutants:
            classify(vk, public, m, tally, failures)
        total += len(mutants)
        print(f"  {name}: {len(mutants)} mutants")

    # Cross-proof splices between every ordered pair of circuits.
    names = list(targets)
    for i, na in enumerate(names):
        for nb in names[i + 1:]:
            vka, pa, da = targets[na]
            _, _, db = targets[nb]
            for m in splice_mutants(da, db, rng):
                classify(vka, pa, m, tally, failures)
                total += 1

    # Cross-circuit verification: an honest proof of statement A must not
    # verify against statement B (transcript domain separation).
    cross = tally.setdefault("cross_verify", {
        "parse_rejected": 0, "verify_rejected": 0,
        "accepted": 0, "crashed": 0})
    for na in names:
        for nb in names:
            if na == nb:
                continue
            vkb, pb, _ = targets[nb]
            _, _, da = targets[na]
            classify(vkb, pb, Mutant("cross_verify", da), tally, failures)
            total += 1
    del cross  # populated via classify

    # Type confusion at the API boundary: never a crash.
    api = tally.setdefault("api_type_confusion", {
        "parse_rejected": 0, "verify_rejected": 0,
        "accepted": 0, "crashed": 0})
    vk0, public0, _ = targets["cubic"]
    for bogus in (None, 42, b"bytes", "proof", [1, 2], object()):
        try:
            if verify(vk0, bogus):
                api["accepted"] += 1
                failures.append({"mutator": "api_type_confusion",
                                 "stage": "verify", "exception": None,
                                 "message": f"verify({bogus!r}) returned True"})
            else:
                api["verify_rejected"] += 1
        except Exception as exc:  # noqa: BLE001
            api["crashed"] += 1
            failures.append({"mutator": "api_type_confusion",
                             "stage": "verify",
                             "exception": type(exc).__name__,
                             "message": str(exc)})
        total += 1

    elapsed = time.perf_counter() - t0
    accepted = sum(b["accepted"] for b in tally.values())
    crashed = sum(b["crashed"] for b in tally.values())
    report = {
        "seed": args.seed,
        "circuits": names,
        "total_mutants": total,
        "elapsed_seconds": round(elapsed, 3),
        "accepted": accepted,
        "crashed": crashed,
        "per_mutator": tally,
        "failures": failures,
    }
    Path(args.out).write_text(json.dumps(report, indent=2) + "\n")

    print(f"\n{total} mutants in {elapsed:.1f}s "
          f"(report: {args.out})")
    width = max(len(k) for k in tally)
    for mutator, b in sorted(tally.items()):
        print(f"  {mutator:<{width}}  parse-rej {b['parse_rejected']:>4}  "
              f"verify-rej {b['verify_rejected']:>4}  "
              f"accepted {b['accepted']}  crashed {b['crashed']}")
    if accepted or crashed:
        print(f"\nFAIL: {accepted} mutants accepted, {crashed} untyped "
              "crashes — soundness boundary violated")
        return 1
    print("\nOK: every mutant rejected via False or a typed ReproError")
    return 0


if __name__ == "__main__":
    sys.exit(main())
