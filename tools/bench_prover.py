"""Functional-prover perf-regression harness.

Times real Spartan+Orion prove/verify calls on synthetic R1CS instances
across a sweep of sizes and emits the results as machine-readable JSON,
so successive PRs have a recorded perf trajectory instead of anecdotes.

Methodology: one warm-up proof per size (imports, twiddle/plan caches),
then wall-clock best-of-``--repeats`` for prove and verify.  Best-of is
deliberate — on a shared machine the minimum tracks the code's cost while
the mean tracks the machine's load.  Every timed proof is verified; the
run aborts if any fails.

Since schema_version 2 each row also carries a per-phase breakdown
(exclusive wall seconds per task family, from one additional traced
prove) and the harness asserts that the *disabled* tracer's projected
overhead — measured null-span / disabled-counter unit costs times the
observed instrumentation-event counts — stays under 2% of the proving
time, so the observability layer cannot silently tax the hot path.

Since schema_version 3 the payload also records a ``workers_sweep`` at
the largest size: per-proof kernel parallelism (the same statement proved
through a :class:`~repro.parallel.ProverPool` at each worker count, with
a byte-identity check against the serial proof) and job-level batch
throughput via :func:`repro.snark.prove_many`.  Speedups are measured,
not assumed — on a single-core machine they will sit at or below 1.0 and
the JSON says so; the sweep exists to track the trajectory on real
multicore hardware.

Since schema_version 4 every size row records the process peak RSS (the
streaming commit keeps it bounded through the 2^20 sweep), and the
workers sweep carries a ``dispatch`` block per worker count: pool warm-up
wall time, the measured per-task dispatch cost from the one-shot probe,
and bytes shared through :mod:`repro.parallel.shm` vs bytes pickled
through the executor pipe.  The harness asserts ``prove_many`` with
workers stays at or above ``--min-batch-speedup`` (default 0.95) of the
serial batch — the regression guard for the zero-copy dispatch path.

Run:  PYTHONPATH=src python tools/bench_prover.py --json BENCH_prover.json
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path

sys.path.insert(0, str(Path(__file__).resolve().parent.parent / "src"))

import numpy as np

from repro import obs
from repro.hashing import Transcript
from repro.obs.events import FLIGHT
from repro.obs.metrics import METRICS, peak_rss_bytes
from repro.pcs import OrionPCS, PCSParams
from repro.spartan import SpartanParams, SpartanProver, SpartanVerifier
from repro.workloads import synthetic_r1cs

#: Paper-scale row count for the Orion matrix (Sec. VII-A).
DEFAULT_NUM_ROWS = 128

#: Ceiling on the disabled tracer's projected share of proving time.
MAX_NOOP_OVERHEAD_FRAC = 0.02

#: Batch proving with workers must stay within this fraction of serial
#: (the zero-copy dispatch regression guard; override with
#: ``--min-batch-speedup``, 0 disables).
DEFAULT_MIN_BATCH_SPEEDUP = 0.95

#: The speedup floor is only enforced when the serial batch takes at
#: least this long: the guard exists to catch steady-state dispatch
#: regressions, and a sub-second batch is all fixed overhead — a few
#: milliseconds of scheduler noise would swing it across any floor.
#: Skipped guards are reported, never silent.
MIN_GUARD_BATCH_S = 1.0


def measure_instrumentation_unit_costs(iters: int = 200_000) -> dict:
    """Per-event cost of *disabled* instrumentation: a null span, a
    disabled counter increment, a disabled histogram observation, and a
    disabled flight-recorder append, measured by tight-loop amortization.
    Covers everything metrics v2 compiled into the hot path."""
    assert obs.get_tracer() is None and not METRICS.enabled
    t0 = time.perf_counter()
    for _ in range(iters):
        with obs.span("bench.noop", "other"):
            pass
    span_s = (time.perf_counter() - t0) / iters
    t0 = time.perf_counter()
    for _ in range(iters):
        METRICS.inc("bench.noop")
    inc_s = (time.perf_counter() - t0) / iters
    t0 = time.perf_counter()
    for _ in range(iters):
        METRICS.observe("bench.noop_seconds", 1e-3)
    observe_s = (time.perf_counter() - t0) / iters
    flight_prev = FLIGHT.enabled
    FLIGHT.enabled = False
    try:
        t0 = time.perf_counter()
        for _ in range(iters):
            FLIGHT.record("janitor")
        flight_s = (time.perf_counter() - t0) / iters
    finally:
        FLIGHT.enabled = flight_prev
    return {"null_span_s": span_s, "disabled_inc_s": inc_s,
            "disabled_observe_s": observe_s,
            "disabled_flight_record_s": flight_s}


def noop_overhead_frac(prove_s: float, num_spans: int, num_incs: int,
                       unit_costs: dict, num_observes: int = 0) -> float:
    """Projected fraction of ``prove_s`` spent in disabled instrumentation.

    ``num_observes`` covers the v2 histogram observations (latency and
    per-family phase seconds); each proof also books one flight-recorder
    job append."""
    cost = (num_spans * unit_costs["null_span_s"]
            + num_incs * unit_costs["disabled_inc_s"]
            + num_observes * unit_costs.get("disabled_observe_s", 0.0)
            + unit_costs.get("disabled_flight_record_s", 0.0))
    return cost / prove_s if prove_s else 0.0


def bench_size(log_size: int, num_rows: int, repeats: int,
               repetitions: int, unit_costs: dict) -> dict:
    """Time prove/verify at 2^log_size constraints; returns one JSON row."""
    r1cs, public, witness = synthetic_r1cs(log_size, band=16, seed=log_size)
    params = SpartanParams(repetitions=repetitions)
    pcs_rng = np.random.default_rng(1)
    prover = SpartanProver(r1cs, OrionPCS(params=PCSParams(num_rows=num_rows),
                                          rng=pcs_rng), params)
    verifier = SpartanVerifier(r1cs, OrionPCS(params=PCSParams(num_rows=num_rows)),
                               params)

    proof = prover.prove(public, witness, Transcript())  # warm-up
    prove_s = min_wall(repeats, lambda: prover.prove(public, witness,
                                                     Transcript()))
    proof = prover.prove(public, witness, Transcript())
    if not verifier.verify(public, proof, Transcript()):
        raise SystemExit(f"proof at 2^{log_size} failed to verify")
    verify_s = min_wall(repeats, lambda: verifier.verify(public, proof,
                                                         Transcript()))

    # One traced prove for the per-phase breakdown and the event counts
    # feeding the no-op-overhead projection.
    with obs.tracing() as tracer:
        prover.prove(public, witness, Transcript())
    counters = tracer.metrics_snapshot.get("counters", {})
    num_spans = len(tracer.records())
    # Per-call counters dominate the inc count; everything else (trees,
    # sumcheck instances, encode calls) is O(10) per proof.
    num_incs = (counters.get("field.mul_batches", 0)
                + counters.get("field.scale_add_batches", 0) + 64)
    # Histogram observations per proof: one latency sample plus one
    # phase_seconds sample per task family, padded for verify/dispatch.
    num_observes = len(tracer.family_seconds()) + 8
    overhead = noop_overhead_frac(prove_s, num_spans, num_incs, unit_costs,
                                  num_observes)
    if overhead >= MAX_NOOP_OVERHEAD_FRAC:
        raise SystemExit(
            f"disabled-tracer overhead projection at 2^{log_size} is "
            f"{overhead:.2%} of proving time (limit "
            f"{MAX_NOOP_OVERHEAD_FRAC:.0%}): the no-op fast path regressed")
    return {
        "log_size": log_size,
        "num_constraints": 1 << log_size,
        "prove_s": round(prove_s, 6),
        "verify_s": round(verify_s, 6),
        "proof_size_bytes": proof.size_bytes(),
        "verified": True,
        # Cumulative process high-water mark AFTER this size completed;
        # the streaming commit keeps its growth bounded as sizes scale.
        "peak_rss_bytes": peak_rss_bytes(),
        "phase_seconds": {fam: round(s, 6) for fam, s in
                          sorted(tracer.family_seconds().items())},
        "instrumentation": {
            "spans": num_spans,
            "counter_incs_est": num_incs,
            "observes_est": num_observes,
            "noop_overhead_frac": round(overhead, 6),
        },
    }


def _dispatch_snapshot(pool, shared0: int, pickled0: int) -> dict:
    """Dispatch-overhead block for one worker count (schema v4)."""
    counters = METRICS.counters()
    return {
        "pool_warm_s": round(pool.warm_s or 0.0, 6),
        "dispatch_probe_s": round(pool.dispatch_cost_s, 9),
        "shm_enabled": pool.use_shm,
        "bytes_shared": int(counters.get("parallel.shm_bytes_shared", 0)
                            - shared0),
        "bytes_pickled": int(counters.get("parallel.bytes_pickled", 0)
                             - pickled0),
        "dispatches": int(counters.get("parallel.dispatches", 0)),
    }


def bench_workers(log_size: int, num_rows: int, repeats: int,
                  repetitions: int, worker_counts,
                  min_batch_speedup: float) -> dict:
    """Workers sweep at one size: in-proof kernel fan-out and job-level
    batch throughput, each against its own serial baseline.

    Pools are warmed (spawn + dispatch probe + proving-key broadcast)
    before the timed region, mirroring how the persistent process-wide
    pool amortizes those costs in real use; the dispatch block records
    what the warm-up cost and what the timed runs actually shipped.
    """
    from repro.parallel import ProverPool
    from repro.snark import TEST, proof_to_bytes, prove_many, setup, verify

    # Serial baselines divide the other rows, so 1 leads the sweep.
    worker_counts = sorted(set(worker_counts) | {1})
    r1cs, public, witness = synthetic_r1cs(log_size, band=16, seed=log_size)
    params = SpartanParams(repetitions=repetitions)

    def pooled_prove(pool):
        # Fresh seeded rng per call so proof bytes are comparable.
        pcs = OrionPCS(params=PCSParams(num_rows=num_rows),
                       rng=np.random.default_rng(1))
        return SpartanProver(r1cs, pcs, params, pool=pool).prove(
            public, witness, Transcript())

    kernel_rows = []
    serial_bytes = proof_to_bytes(pooled_prove(None))
    serial_s = None
    for w in worker_counts:
        with ProverPool(w) as pool:
            pool.warm()
            pooled_prove(pool)  # warm-up (primes worker caches)
            METRICS.enabled = True
            METRICS.reset()
            try:
                prove_s = min_wall(repeats, lambda: pooled_prove(pool))
                dispatch = _dispatch_snapshot(pool, 0, 0)
            finally:
                METRICS.enabled = False
                METRICS.reset()
            identical = proof_to_bytes(pooled_prove(pool)) == serial_bytes
        if not identical:
            raise SystemExit(
                f"pooled proof at {w} workers diverged from serial bytes")
        if w == 1:
            serial_s = prove_s
        kernel_rows.append({
            "workers": w,
            "prove_s": round(prove_s, 6),
            "speedup_vs_serial": round(serial_s / prove_s, 4),
            "bytes_identical_to_serial": identical,
            "dispatch": dispatch,
        })

    # Job-level throughput: a batch of independent statements.  Uses the
    # registry TEST preset so workers can rebuild the full pipeline from
    # the broadcast proving key.
    pk, vk = setup(r1cs, TEST)
    num_jobs = max(worker_counts)
    jobs = [(public, witness)] * num_jobs
    batch_rows = []
    batch_serial_s = None
    for w in worker_counts:
        with ProverPool(w) as pool:
            pool.warm()
            # Warm-up with one job per worker so the batch path is primed
            # like a warm pool: pk broadcast, every worker's unpickle
            # cache, and every worker's NTT root tables at this size.
            prove_many(pk, jobs[: min(w, num_jobs)], pool=pool, base_seed=0)
            METRICS.enabled = True
            METRICS.reset()
            try:
                # The speedup a multi-second batch is guarded on must be
                # robust to this-machine noise: pair every pooled shot
                # with a serial shot taken seconds earlier (cancels slow
                # drift — frequency scaling, page cache, allocator
                # state), then take the MEDIAN of the per-round ratios
                # (discards the heavy-tailed steal-time spikes a shared
                # vCPU lands on individual shots, which a ratio of two
                # independent minima amplifies instead).
                bundles = None
                ratios = []
                pooled_best = float("inf")
                for _ in range(max(1, repeats)):
                    t0 = time.perf_counter()
                    prove_many(pk, jobs, workers=1, base_seed=5)
                    serial_i = time.perf_counter() - t0
                    t0 = time.perf_counter()
                    bundles = prove_many(pk, jobs, pool=pool, base_seed=5)
                    pooled_i = time.perf_counter() - t0
                    ratios.append(serial_i / pooled_i)
                    pooled_best = min(pooled_best, pooled_i)
                batch_s = pooled_best
                ratios.sort()
                median_ratio = ratios[len(ratios) // 2]
                dispatch = _dispatch_snapshot(pool, 0, 0)
            finally:
                METRICS.enabled = False
                METRICS.reset()
        if not all(verify(vk, b) for b in bundles):
            raise SystemExit(f"prove_many batch at {w} workers "
                             "produced an invalid proof")
        if w == 1:
            batch_serial_s = batch_s
        speedup = median_ratio
        batch_rows.append({
            "workers": w,
            "jobs": num_jobs,
            "batch_s": round(batch_s, 6),
            "per_proof_s": round(batch_s / num_jobs, 6),
            "speedup_vs_serial": round(speedup, 4),
            "dispatch": dispatch,
        })
        if w > 1 and min_batch_speedup > 0:
            if batch_serial_s < MIN_GUARD_BATCH_S:
                print(f"  note: {min_batch_speedup:.2f}x floor not enforced "
                      f"(serial batch {batch_serial_s:.3f}s < "
                      f"{MIN_GUARD_BATCH_S:.1f}s; too small to amortize "
                      "dispatch)")
            elif speedup < min_batch_speedup:
                raise SystemExit(
                    f"prove_many at {w} workers ran at {speedup:.2f}x "
                    f"serial, below the {min_batch_speedup:.2f}x floor: the "
                    "zero-copy dispatch path regressed")
    import os

    return {
        "log_size": log_size,
        "cpu_count": os.cpu_count(),
        "min_batch_speedup": min_batch_speedup,
        "guard_enforced": bool(min_batch_speedup > 0
                               and batch_serial_s >= MIN_GUARD_BATCH_S),
        "kernel_parallel": kernel_rows,
        "prove_many": batch_rows,
    }


def min_wall(repeats: int, fn) -> float:
    best = float("inf")
    for _ in range(repeats):
        t0 = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - t0)
    return best


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    ap.add_argument("--json", metavar="PATH", default="BENCH_prover.json",
                    help="output file (default: %(default)s)")
    ap.add_argument("--min-log", type=int, default=10,
                    help="smallest log2 constraint count (default: %(default)s)")
    ap.add_argument("--max-log", type=int, default=16,
                    help="largest log2 constraint count (default: %(default)s)")
    ap.add_argument("--repeats", type=int, default=3,
                    help="best-of-N wall-clock repeats (default: %(default)s)")
    ap.add_argument("--num-rows", type=int, default=DEFAULT_NUM_ROWS,
                    help="Orion matrix rows (default: %(default)s)")
    ap.add_argument("--repetitions", type=int, default=1,
                    help="sumcheck repetitions (default: 1 — timing, not "
                         "soundness; the paper's 128-bit setting is 3)")
    ap.add_argument("--workers", default="1,2,4",
                    help="comma-separated worker counts for the parallel "
                         "sweep at the largest size (default: %(default)s); "
                         "pass 0 to skip the sweep")
    ap.add_argument("--min-batch-speedup", type=float,
                    default=DEFAULT_MIN_BATCH_SPEEDUP,
                    help="fail if prove_many with workers drops below this "
                         "fraction of serial (default: %(default)s; 0 "
                         "disables, e.g. on noisy CI runners)")
    args = ap.parse_args(argv)
    if args.min_log > args.max_log:
        ap.error(f"--min-log {args.min_log} exceeds --max-log {args.max_log}")
    if args.repeats < 1:
        ap.error("--repeats must be at least 1")

    unit_costs = measure_instrumentation_unit_costs()
    print(f"disabled instrumentation: null span "
          f"{unit_costs['null_span_s'] * 1e9:.0f} ns, "
          f"disabled inc {unit_costs['disabled_inc_s'] * 1e9:.0f} ns, "
          f"disabled observe {unit_costs['disabled_observe_s'] * 1e9:.0f} ns, "
          f"disabled flight {unit_costs['disabled_flight_record_s'] * 1e9:.0f}"
          " ns")

    results = []
    print(f"{'size':>6} {'prove (s)':>10} {'verify (s)':>10} {'proof (B)':>10}"
          f" {'noop ovh':>9}")
    for log_size in range(args.min_log, args.max_log + 1):
        row = bench_size(log_size, args.num_rows, args.repeats,
                         args.repetitions, unit_costs)
        results.append(row)
        print(f"  2^{log_size:<3} {row['prove_s']:>10.4f} "
              f"{row['verify_s']:>10.4f} {row['proof_size_bytes']:>10} "
              f"{row['instrumentation']['noop_overhead_frac']:>9.4%}")

    worker_counts = [int(w) for w in str(args.workers).split(",") if w]
    workers_sweep = None
    if worker_counts != [0]:
        print(f"workers sweep at 2^{args.max_log} "
              f"(counts: {sorted(set(worker_counts) | {1})}):")
        workers_sweep = bench_workers(args.max_log, args.num_rows,
                                      args.repeats, args.repetitions,
                                      worker_counts,
                                      args.min_batch_speedup)
        for row in workers_sweep["kernel_parallel"]:
            d = row["dispatch"]
            print(f"  kernels   w={row['workers']}: {row['prove_s']:.4f} s "
                  f"({row['speedup_vs_serial']:.2f}x, "
                  f"shared {d['bytes_shared']:,} B, "
                  f"pickled {d['bytes_pickled']:,} B)")
        for row in workers_sweep["prove_many"]:
            d = row["dispatch"]
            print(f"  batch x{row['jobs']} w={row['workers']}: "
                  f"{row['batch_s']:.4f} s "
                  f"({row['speedup_vs_serial']:.2f}x, "
                  f"shared {d['bytes_shared']:,} B, "
                  f"pickled {d['bytes_pickled']:,} B)")

    payload = {
        "benchmark": "spartan_orion_functional_prover",
        "schema": "repro/bench-prover",
        "schema_version": 4,
        "workload": "synthetic_r1cs(band=16)",
        "num_rows": args.num_rows,
        "repetitions": args.repetitions,
        "repeats": args.repeats,
        "timing": "best-of-N wall clock, warm",
        "python": platform.python_version(),
        "machine": platform.machine(),
        "instrumentation_unit_costs_s": {
            k: round(v, 12) for k, v in unit_costs.items()},
        "max_noop_overhead_frac": MAX_NOOP_OVERHEAD_FRAC,
        "results": results,
        "workers_sweep": workers_sweep,
    }
    Path(args.json).write_text(json.dumps(payload, indent=2) + "\n")
    print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
