"""NoCap accelerator exploration: simulate proof generation at paper
scale, inspect the runtime/traffic/power breakdowns (Figs. 5-6), and
sweep the design space (Figs. 7-8).

Run:  python examples/accelerator_explorer.py
"""

from repro.analysis.tables import format_table
from repro.nocap import (
    DEFAULT_CONFIG,
    NoCapSimulator,
    area_model,
    pareto_frontier,
    power_model,
    sensitivity_sweep,
)
from repro.nocap.designspace import design_space_sweep
from repro.workloads.spec import PAPER_WORKLOADS


def main() -> None:
    sim = NoCapSimulator(DEFAULT_CONFIG)

    # -- chip summary (Table II) ---------------------------------------------
    area = area_model()
    print(f"NoCap @14nm, 1 GHz: {area.total:.2f} mm^2 "
          f"({area.total_compute:.2f} compute, "
          f"{area.total_memory_system:.2f} memory system)")

    # -- one proof at the Table I reference size -----------------------------
    report = sim.simulate(1 << 24)
    power = power_model(report)
    print(f"\n16M-constraint proof: {report.total_seconds * 1e3:.1f} ms, "
          f"{report.total_traffic_bytes / 1e9:.1f} GB HBM traffic, "
          f"{power.total_watts:.1f} W")
    print(format_table(
        ["task family", "time %", "traffic %"],
        [(fam, 100 * report.time_fractions()[fam],
          100 * report.traffic_fractions()[fam])
         for fam in ("sumcheck", "polyarith", "rs_encode", "merkle", "spmv")],
        "\nruntime and memory-traffic breakdown (Fig. 6):"))
    print(f"compute utilization: {report.compute_utilization():.0%}")

    # -- per-benchmark proving time (Table IV) --------------------------------
    rows = []
    for w in PAPER_WORKLOADS:
        r = sim.simulate(w.padded_constraints)
        rows.append((w.name, r.total_seconds, w.paper_nocap_s))
    print(format_table(["workload", "model (s)", "paper (s)"], rows,
                       "\nproving time (Table IV):"))

    # -- sensitivity (Fig. 7) --------------------------------------------------
    points = sensitivity_sweep(factors=(0.25, 0.5, 1.0, 2.0, 4.0))
    by_resource = {}
    for p in points:
        by_resource.setdefault(p.resource, {})[p.factor] = p.relative_performance
    rows = [(res,) + tuple(by_resource[res][f] for f in (0.25, 0.5, 1.0, 2.0, 4.0))
            for res in ("arith", "hash", "ntt", "hbm", "rf")]
    print(format_table(["resource", "x0.25", "x0.5", "x1", "x2", "x4"], rows,
                       "\nsensitivity: relative gmean performance (Fig. 7):"))

    # -- design space (Fig. 8) ---------------------------------------------------
    sweep = design_space_sweep(
        hbm_bytes_per_s=1e12,
        arith_factors=(0.25, 0.5, 1.0, 2.0),
        ntt_factors=(0.5, 1.0, 2.0),
        hash_factors=(1.0,),
        rf_factors=(0.5, 1.0),
        workload_sizes=[w.raw_constraints for w in PAPER_WORKLOADS])
    frontier = pareto_frontier(sweep)
    print(format_table(
        ["area (mm^2)", "gmean time (s)", "mul lanes", "ntt lanes", "RF MB"],
        [(p.area_mm2, p.gmean_seconds, p.config.mul_lanes,
          p.config.ntt_lanes, p.config.register_file_bytes >> 20)
         for p in frontier],
        f"\nPareto frontier at 1 TB/s ({len(sweep)} points swept, Fig. 8):"))


if __name__ == "__main__":
    main()
