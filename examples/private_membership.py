"""Private set membership: prove a credential belongs to a committed set
without revealing which one.

A registrar publishes the Poseidon Merkle root of a credential set.  A
user proves, in zero knowledge, "I hold a credential in the set" —
neither the credential nor its position leaks.  This is the circuit
pattern behind anonymous credentials, allow-lists, and (at scale)
Zcash-style note membership; it exercises the field-friendly hash gadget
that makes in-circuit hashing affordable (184 constraints per Poseidon
permutation vs tens of thousands for bitwise SHA-256).

Run:  python examples/private_membership.py
"""

import random

from repro.hashing import poseidon
from repro.r1cs import Circuit
from repro.r1cs.poseidon_gadget import merkle_verify_gadget
from repro.snark import TEST, prove, setup, verify


def membership_circuit(root: int, credential: int, index: int,
                       path: list) -> Circuit:
    """Public: the set's Merkle root.  Witness: credential, position, path."""
    circuit = Circuit()
    root_pub = circuit.public(root)

    leaf = circuit.witness(credential)
    bits = [circuit.witness((index >> k) & 1) for k in range(len(path))]
    for b in bits:
        circuit.assert_bool(b)
    siblings = [circuit.witness(s) for s in path]
    merkle_verify_gadget(circuit, root_pub, leaf, bits, siblings)
    return circuit


def main() -> None:
    rng = random.Random(0x5E7)
    credentials = [rng.randrange(1 << 60) for _ in range(16)]
    root = poseidon.merkle_root(credentials)
    print(f"registrar publishes root of {len(credentials)} credentials: "
          f"{root:#x}")

    # The user holds credential #11.
    index = 11
    path = poseidon.merkle_path(credentials, index)
    circuit = membership_circuit(root, credentials[index], index, path)
    print(f"membership circuit: {circuit.num_constraints} constraints "
          f"(depth-{len(path)} Poseidon path)")

    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)
    bundle = prove(pk, public, witness, circuit_id="membership")
    assert verify(vk, bundle)
    print(f"membership proof verified ({bundle.size_bytes()} bytes) — "
          "the verifier learns nothing about which credential")

    # A credential outside the set cannot be proven: building the circuit
    # with a forged path leaves the system unsatisfiable.
    forged = membership_circuit(root, credentials[index] + 1, index, path)
    r1cs, pub, wit = forged.compile()
    assert not r1cs.is_satisfied(r1cs.assemble_z(pub, wit))
    print("forged credential produces an unsatisfiable circuit")


if __name__ == "__main__":
    main()
