"""Trustless sealed-bid auction (the paper's Auction benchmark, after
Galal & Youssef).

The auctioneer announces a winner and a price, and proves to every
participant that the winner really submitted the highest bid — without
revealing any losing bid.

Run:  python examples/sealed_bid_auction.py
"""

import random

from repro.snark import Snark, TEST
from repro.workloads import auction_circuit


def main() -> None:
    rng = random.Random(0xB1D5)
    bid_bits = 20
    bids = [rng.randrange(1 << bid_bits) for _ in range(12)]
    winner = max(range(len(bids)), key=lambda i: bids[i])

    print(f"{len(bids)} sealed bids submitted (values private)")
    print(f"auctioneer announces: winner = bidder #{winner}, "
          f"price = {bids[winner]}")

    circuit, amount = auction_circuit(bids, winner, bid_bits)
    print(f"auction circuit: {circuit.num_constraints} constraints")

    snark = Snark.from_circuit(circuit, preset=TEST)
    bundle = snark.prove()
    assert snark.verify(bundle)
    print(f"auction proof verified ({bundle.size_bytes()} bytes): every "
          "losing bid is <= the announced price, and the winner bid it")

    # An inflated announced price must fail verification.
    bad = bundle.public.copy()
    bad[2] = int(bad[2]) + 1
    assert not snark.verify_raw(bad, bundle.proof)
    print("inflated price rejected")

    # A dishonest winner declaration is rejected at circuit construction.
    loser = min(range(len(bids)), key=lambda i: bids[i])
    try:
        auction_circuit(bids, loser, bid_bits)
    except ValueError as e:
        print(f"dishonest winner rejected: {e}")


if __name__ == "__main__":
    main()
