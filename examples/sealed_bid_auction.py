"""Trustless sealed-bid auction (the paper's Auction benchmark, after
Galal & Youssef).

The auctioneer announces a winner and a price, and proves to every
participant that the winner really submitted the highest bid — without
revealing any losing bid.

Run:  python examples/sealed_bid_auction.py
"""

import random

from repro.snark import TEST, prove, setup, verify
from repro.workloads import auction_circuit


def main() -> None:
    rng = random.Random(0xB1D5)
    bid_bits = 20
    bids = [rng.randrange(1 << bid_bits) for _ in range(12)]
    winner = max(range(len(bids)), key=lambda i: bids[i])

    print(f"{len(bids)} sealed bids submitted (values private)")
    print(f"auctioneer announces: winner = bidder #{winner}, "
          f"price = {bids[winner]}")

    circuit, amount = auction_circuit(bids, winner, bid_bits)
    print(f"auction circuit: {circuit.num_constraints} constraints")

    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)
    bundle = prove(pk, public, witness, circuit_id="auction")
    assert verify(vk, bundle)
    print(f"auction proof verified ({bundle.size_bytes()} bytes): every "
          "losing bid is <= the announced price, and the winner bid it")

    # An inflated announced price must fail verification.
    bundle.public = bundle.public.copy()
    bundle.public[2] = int(bundle.public[2]) + 1
    assert not verify(vk, bundle)
    print("inflated price rejected")

    # A dishonest winner declaration is rejected at circuit construction.
    loser = min(range(len(bids)), key=lambda i: bids[i])
    try:
        auction_circuit(bids, loser, bid_bits)
    except ValueError as e:
        print(f"dishonest winner rejected: {e}")


if __name__ == "__main__":
    main()
