"""Real-time verifiable database (Litmus, Sec. I / VIII-A).

A database proves its transactions executed correctly (every read saw the
latest write, every write landed).  The example proves a small batch with
the real circuit, then uses the performance models to reproduce the
paper's operating-point analysis: at a 1-second transaction-latency
target, software proving sustains only ~2 transactions/second, while
NoCap reaches three orders of magnitude more.

Run:  python examples/verifiable_database.py
"""

from repro.analysis import database_throughput
from repro.baselines import DEFAULT_CPU
from repro.nocap.simulator import prover_seconds as nocap_prover_seconds
from repro.snark import TEST, prove, setup, verify
from repro.workloads import litmus_circuit, random_transactions


def main() -> None:
    # -- functional layer: prove a real transaction batch -------------------
    num_rows, num_txns = 8, 6
    initial_table = [100 + i for i in range(num_rows)]
    txns = random_transactions(num_txns, num_rows, seed=42)
    circuit, final_table, final_log = litmus_circuit(txns, initial_table)
    print(f"batch of {num_txns} transactions over {num_rows} rows "
          f"({circuit.num_constraints} constraints)")
    print(f"  initial table: {initial_table}")
    print(f"  final table:   {final_table}")

    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)
    bundle = prove(pk, public, witness, circuit_id="litmus")
    assert verify(vk, bundle)
    print(f"  transaction batch proof verified ({bundle.size_bytes()} bytes)")

    # A tampered final state must fail.
    bundle.public = bundle.public.copy()
    bundle.public[1 + num_rows] = (int(bundle.public[1 + num_rows]) + 1)
    assert not verify(vk, bundle)
    print("  forged final state rejected")

    # -- performance layer: the paper's operating points ---------------------
    print("\noperating points at a 1 s transaction-latency target")
    print("(latency = prove batch + send proof at 10 MB/s + verify):")
    cpu_pt = database_throughput(DEFAULT_CPU.prover_seconds)
    nocap_pt = database_throughput(nocap_prover_seconds)
    print(f"  32-core CPU: batch {cpu_pt.batch_transactions:>5} txns, "
          f"latency {cpu_pt.latency_s:.2f} s -> "
          f"{cpu_pt.throughput_tps:,.1f} tx/s")
    print(f"  NoCap:       batch {nocap_pt.batch_transactions:>5} txns, "
          f"latency {nocap_pt.latency_s:.2f} s -> "
          f"{nocap_pt.throughput_tps:,.0f} tx/s")
    print(f"  gain: {nocap_pt.throughput_tps / cpu_pt.throughput_tps:,.0f}x "
          "(paper: 2 tx/s -> 1,142 tx/s)")

    # Litmus's own pipelined batching reaches high throughput only with
    # ~100 s latencies; show the tradeoff.
    print("\nlatency-throughput tradeoff (NoCap):")
    for budget in (0.5, 1.0, 2.0, 5.0):
        pt = database_throughput(nocap_prover_seconds, latency_budget_s=budget)
        print(f"  {budget:>4.1f} s budget -> {pt.throughput_tps:>8,.0f} tx/s "
              f"(batch {pt.batch_transactions:,})")


if __name__ == "__main__":
    main()
