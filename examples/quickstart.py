"""Quickstart: prove knowledge of a secret satisfying a public equation.

The prover convinces the verifier it knows x with x^3 + x + 5 = 35,
without revealing x (= 3).  Demonstrates the full pipeline: circuit
construction, R1CS compilation, Spartan+Orion proving, serialization,
and verification.

Run:  python examples/quickstart.py
"""

from repro.r1cs import Circuit
from repro.snark import Snark, TEST, proof_from_bytes, proof_to_bytes


def main() -> None:
    # 1. Build the circuit.  Public inputs first, then witnesses.
    circuit = Circuit()
    out = circuit.public(35)
    x = circuit.witness(3)  # the secret
    x_cubed = circuit.mul(circuit.mul(x, x), x)
    circuit.assert_equal(x_cubed + x + 5, out)
    print(f"circuit: {circuit.num_constraints} constraints, "
          f"{circuit.num_variables} variables")

    # 2. Compile + prove.  TEST preset shrinks the soundness knobs so the
    #    demo is instant; PAPER is the 128-bit configuration.
    snark = Snark.from_circuit(circuit, preset=TEST)
    bundle = snark.prove()
    print(f"proof generated: {bundle.size_bytes()} bytes "
          f"(security preset: {TEST.name})")

    # 3. Ship it: the proof serializes to a compact wire format.
    wire = proof_to_bytes(bundle.proof)
    print(f"wire format: {len(wire)} bytes")

    # 4. Verify (the verifier only needs the R1CS, public inputs, proof).
    restored = proof_from_bytes(wire)
    assert snark.verify_raw(bundle.public, restored)
    print("proof verified: the prover knows x with x^3 + x + 5 = 35")

    # 5. A wrong public input must fail.
    bad_public = bundle.public.copy()
    bad_public[1] = 36
    assert not snark.verify_raw(bad_public, restored)
    print("tampered statement rejected")


if __name__ == "__main__":
    main()
