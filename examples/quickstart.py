"""Quickstart: prove knowledge of a secret satisfying a public equation.

The prover convinces the verifier it knows x with x^3 + x + 5 = 35,
without revealing x (= 3).  Demonstrates the full lifecycle: circuit
construction, R1CS compilation, key generation, Spartan+Orion proving,
envelope serialization, and verification.

Run:  python examples/quickstart.py
"""

from repro.r1cs import Circuit
from repro.snark import ProofBundle, TEST, prove, setup, verify


def main() -> None:
    # 1. Build the circuit.  Public inputs first, then witnesses.
    circuit = Circuit()
    out = circuit.public(35)
    x = circuit.witness(3)  # the secret
    x_cubed = circuit.mul(circuit.mul(x, x), x)
    circuit.assert_equal(x_cubed + x + 5, out)
    print(f"circuit: {circuit.num_constraints} constraints, "
          f"{circuit.num_variables} variables")

    # 2. Compile + keygen.  The proving key stays with the prover, the
    #    verifying key goes to the relying party.  TEST shrinks the
    #    soundness knobs so the demo is instant; PAPER is 128-bit.
    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)

    # 3. Prove.
    bundle = prove(pk, public, witness, circuit_id="quickstart")
    print(f"proof generated: {bundle.size_bytes()} bytes "
          f"(security preset: {TEST.name})")

    # 4. Ship it: the bundle serializes to a self-describing envelope
    #    (preset id + public inputs + proof payload in one blob).
    wire = bundle.to_bytes()
    print(f"envelope: {len(wire)} bytes")

    # 5. Verify (the verifier needs only the verifying key + envelope).
    restored = ProofBundle.from_bytes(wire)
    assert verify(vk, restored)
    print("proof verified: the prover knows x with x^3 + x + 5 = 35")

    # 6. A wrong public input must fail.
    restored.public = restored.public.copy()
    restored.public[1] = 36
    assert not verify(vk, restored)
    print("tampered statement rejected")


if __name__ == "__main__":
    main()
