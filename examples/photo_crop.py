"""Secure photo modification (Sec. I of the paper).

A camera signs an accumulator commitment of the original image.  The user
crops the photo and proves, in zero knowledge, that the published crop is
a *descendant* of the signed original — without revealing the parts that
were cropped away.

This example runs the real circuit on a tiny image, then uses the
performance models to report the paper's headline numbers for a 256 KB
image ("over 12 minutes to prove on a CPU, but with NoCap a proof takes
just over a second, and verification takes only 0.2 seconds").

Run:  python examples/photo_crop.py
"""

import random

from repro.analysis import photo_modification
from repro.field.goldilocks import MODULUS
from repro.r1cs import Circuit
from repro.snark import TEST, prove, setup, verify

#: Fold constant of the toy accumulator commitment the "camera" signs.
#: (Stands in for the hash circuit a production deployment would use.)
GAMMA = 0x9E3779B97F4A7C15


def accumulate(pixels):
    acc = 0
    for p in pixels:
        acc = (acc * GAMMA + p) % MODULUS
    return acc


def crop_circuit(image, width, rect):
    """Prove: commit(image) == signed_commitment and crop == image[rect].

    Public: the camera's commitment, then the cropped pixels.
    Witness: every original pixel.
    """
    x0, y0, w, h = rect
    height = len(image) // width
    assert x0 + w <= width and y0 + h <= height

    circuit = Circuit()
    commitment = circuit.public(accumulate(image))
    crop_values = [image[(y0 + r) * width + (x0 + c)]
                   for r in range(h) for c in range(w)]
    crop_pub = [circuit.public(v) for v in crop_values]

    pixels = [circuit.witness(p) for p in image]

    # Recompute the accumulator in-circuit and bind it to the signature.
    acc = circuit.constant(0)
    for p in pixels:
        acc = acc * GAMMA + p
    circuit.assert_equal(acc, commitment)

    # Bind each published crop pixel to the corresponding original pixel.
    for i, pub in enumerate(crop_pub):
        r, c = divmod(i, w)
        circuit.assert_equal(pixels[(y0 + r) * width + (x0 + c)], pub)
    return circuit


def main() -> None:
    rng = random.Random(0xF07)
    width, height = 8, 8
    image = [rng.randrange(256) for _ in range(width * height)]
    rect = (2, 3, 4, 2)  # x, y, w, h

    print(f"original image: {width}x{height}, crop rect {rect}")
    circuit = crop_circuit(image, width, rect)
    print(f"circuit: {circuit.num_constraints} constraints")

    r1cs, public, witness = circuit.compile()
    pk, vk = setup(r1cs, preset=TEST)
    bundle = prove(pk, public, witness, circuit_id="photo-crop")
    assert verify(vk, bundle)
    print(f"crop proof verified ({bundle.size_bytes()} bytes); the "
          "cropped-away pixels were never revealed")

    # A forged crop pixel must fail.
    bundle.public = bundle.public.copy()
    bundle.public[2] = (int(bundle.public[2]) + 1) % MODULUS
    assert not verify(vk, bundle)
    print("forged crop rejected")

    # Paper-scale projection for a 256 KB image.
    uc = photo_modification()
    print(f"\npaper scale — {uc.name}:")
    print(f"  CPU prover:    {uc.cpu_prover_s / 60:.1f} minutes")
    print(f"  NoCap prover:  {uc.nocap_prover_s:.2f} s")
    print(f"  verification:  {uc.verify_s:.2f} s")


if __name__ == "__main__":
    main()
